package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rtmdm/internal/metrics"
)

const testScenario = `{
	"horizon_ms": 200,
	"tasks": [
		{"name": "kws", "model": "ds-cnn", "period_ms": 50},
		{"name": "ae",  "model": "autoencoder", "period_ms": 100}
	]
}`

// testScenarioShuffled spells the same deployment with reordered tasks
// and explicit defaults; it must hit the same cache entry.
const testScenarioShuffled = `{
	"platform": "stm32h743",
	"policy": "rt-mdm",
	"horizon_ms": 200,
	"tasks": [
		{"name": "ae",  "model": "autoencoder", "period_ms": 100, "deadline_ms": 100, "seed": 1},
		{"name": "kws", "model": "ds-cnn", "period_ms": 50}
	]
}`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, ts
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestAnalyzeAllPolicies(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/analyze", `{"scenario": `+testScenario+`}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var ar AnalyzeResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if len(ar.ScenarioHash) != 64 {
		t.Fatalf("scenario_hash %q", ar.ScenarioHash)
	}
	if len(ar.Results) != 6 {
		t.Fatalf("%d policy results; want 6 (all canonical policies)", len(ar.Results))
	}
	byPolicy := map[string]PolicyResult{}
	for _, r := range ar.Results {
		byPolicy[r.Policy] = r
	}
	rtmdm, ok := byPolicy["rt-mdm"]
	if !ok || rtmdm.Test == "" {
		t.Fatalf("rt-mdm result missing or untested: %+v", rtmdm)
	}
	if rtmdm.Schedulable && len(rtmdm.WCRTNs) == 0 {
		t.Fatalf("schedulable verdict without WCRT bounds: %+v", rtmdm)
	}
	// serial-segedf has no sound offline test; the result must say so
	// rather than fake a verdict.
	if segedf := byPolicy["serial-segedf"]; segedf.Error == "" {
		t.Fatalf("serial-segedf should report an analysis error: %+v", segedf)
	}
}

func TestAnalyzePolicySubsetAndCache(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"scenario": ` + testScenario + `, "policies": ["rt-mdm"]}`
	resp1, body1 := post(t, ts.URL+"/v1/analyze", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-Rtmdm-Cache"); got != cacheMiss {
		t.Fatalf("first request cache header %q; want miss", got)
	}
	resp2, body2 := post(t, ts.URL+"/v1/analyze", req)
	if got := resp2.Header.Get("X-Rtmdm-Cache"); got != cacheHit {
		t.Fatalf("second request cache header %q; want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cache hit returned different bytes:\n%s\n%s", body1, body2)
	}
}

func TestSimulateSummaryAndCanonicalCache(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/simulate", `{"scenario": `+testScenario+`}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SimulateResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	kws, ok := sr.Tasks["kws"]
	if !ok || kws.Released == 0 {
		t.Fatalf("kws summary missing or empty: %+v", sr.Tasks)
	}
	if kws.Completed > 0 && (kws.MaxResponseNs <= 0 || kws.P50ResponseNs <= 0) {
		t.Fatalf("kws latency summary not populated: %+v", kws)
	}
	if sr.CPUUtilization <= 0 || sr.CPUUtilization > 1 {
		t.Fatalf("cpu utilization %v out of range", sr.CPUUtilization)
	}
	if sr.Trace != nil {
		t.Fatal("trace present without include_trace")
	}

	// A canonically equivalent spelling must hit the same entry.
	resp2, body2 := post(t, ts.URL+"/v1/simulate", `{"scenario": `+testScenarioShuffled+`}`)
	if got := resp2.Header.Get("X-Rtmdm-Cache"); got != cacheHit {
		t.Fatalf("equivalent scenario cache header %q; want hit", got)
	}
	if !bytes.Equal(body, body2) {
		t.Fatal("equivalent scenario returned different bytes")
	}
}

func TestSimulateIncludeTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/simulate", `{"scenario": `+testScenario+`, "include_trace": true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SimulateResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	var tev struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(sr.Trace, &tev); err != nil {
		t.Fatalf("trace is not Trace Event Format JSON: %v", err)
	}
	if len(tev.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxHorizonMs: 500})
	cases := []struct {
		name, url, body string
		want            int
	}{
		{"bad json", "/v1/analyze", `{`, http.StatusBadRequest},
		{"unknown field", "/v1/analyze", `{"scenario": ` + testScenario + `, "bogus": 1}`, http.StatusBadRequest},
		{"no scenario", "/v1/analyze", `{}`, http.StatusBadRequest},
		{"no tasks", "/v1/simulate", `{"scenario": {"tasks": []}}`, http.StatusBadRequest},
		{"unknown policy", "/v1/analyze", `{"scenario": ` + testScenario + `, "policies": ["nope"]}`, http.StatusBadRequest},
		{"horizon cap", "/v1/simulate", `{"scenario": {"horizon_ms": 1e6, "tasks": [{"name":"a","model":"lenet5","period_ms":10}]}}`, http.StatusBadRequest},
		{"unknown model", "/v1/simulate", `{"scenario": {"horizon_ms": 100, "tasks": [{"name":"a","model":"nope","period_ms":10}]}}`, http.StatusUnprocessableEntity},
		{"admit no id", "/v1/admit", `{"node":"n","task":{"name":"a","model":"lenet5","period_ms":10}}`, http.StatusBadRequest},
		{"admit no node", "/v1/admit", `{"request_id":1,"task":{"name":"a","model":"lenet5","period_ms":10}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := post(t, ts.URL+tc.url, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d; want %d (%s)", tc.name, resp.StatusCode, tc.want, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q is not an error envelope", tc.name, body)
		}
	}
}

func TestAdmitEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"request_id": 1, "node": "mcu0", "policy": "rt-mdm",
		"task": {"name": "kws", "model": "ds-cnn", "period_ms": 100}}`
	resp, body := post(t, ts.URL+"/v1/admit", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var ar AdmitResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if !ar.Admitted || len(ar.Committed) != 1 {
		t.Fatalf("first admit: %+v", ar)
	}

	// Same task name again: decided (200) but rejected, state unchanged.
	resp, body = post(t, ts.URL+"/v1/admit", `{"request_id": 2, "node": "mcu0",
		"task": {"name": "kws", "model": "ds-cnn", "period_ms": 100}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Admitted || len(ar.Committed) != 1 {
		t.Fatalf("duplicate admit: %+v", ar)
	}
}

func TestBackpressure429(t *testing.T) {
	// One worker, no queue: holding the single admission token makes
	// every compute request shed deterministically.
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: -1})
	rel, err := srv.pool.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	resp, body := post(t, ts.URL+"/v1/analyze", `{"scenario": `+testScenario+`}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d: %s; want 429", resp.StatusCode, body)
	}
	if sec, err := retryAfterSeconds(resp.Header); err != nil || sec < 1 {
		t.Fatalf("Retry-After %q not a positive integer", resp.Header.Get("Retry-After"))
	}
}

func TestRequestTimeout504(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	resp, body := post(t, ts.URL+"/v1/analyze", `{"scenario": `+testScenario+`}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s; want 504", resp.StatusCode, body)
	}
}

func TestPanicRecovery(t *testing.T) {
	srv := New(Config{})
	srv.handle("GET /boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d; want 500", resp.StatusCode)
	}
	if !strings.Contains(string(body), "kaboom") {
		t.Fatalf("error body %q does not carry the panic value", body)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	_, ts := newTestServer(t, Config{Registry: reg})
	post(t, ts.URL+"/v1/analyze", `{"scenario": `+testScenario+`, "policies": ["rt-mdm"]}`)
	resp, body := post(t, ts.URL+"/v1/analyze", `{"scenario": `+testScenario+`, "policies": ["rt-mdm"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status %d", resp.StatusCode)
	}
	_ = body
	mresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", mresp.StatusCode)
	}
	snap := reg.Snapshot()
	if s, ok := snap.Get("server.cache_hits"); !ok || s.Value < 1 {
		t.Fatalf("server.cache_hits = %+v; want >= 1", s)
	}
	if s, ok := snap.Get("server.requests_total"); !ok || s.Value < 2 {
		t.Fatalf("server.requests_total = %+v; want >= 2", s)
	}
	for _, name := range []string{"server.cache_hits", "server.requests_total", "server.request_latency_ns"} {
		if !strings.Contains(string(mbody), name) {
			t.Fatalf("/v1/metrics body missing %s:\n%s", name, mbody)
		}
	}
}

func TestShutdownDrains(t *testing.T) {
	srv := New(Config{AdmitWindow: 50 * time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	// Kick off an admission whose batch window is still open, then shut
	// down: Shutdown must wait for the decision, not orphan it.
	done := make(chan struct{})
	go func() {
		defer close(done)
		post(t, ts.URL+"/v1/admit", `{"request_id": 1, "node": "n",
			"task": {"name": "a", "model": "lenet5", "period_ms": 100}}`)
	}()
	time.Sleep(10 * time.Millisecond) // let the request enqueue
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	<-done
}
