package server

import (
	"bytes"
	"fmt"
	"net/http"
	"testing"

	"rtmdm/internal/cluster"
)

func snapAddBody(id uint64, node, name string, periodMs float64) string {
	return fmt.Sprintf(`{"request_id": %d, "node": %q, "task": {
		"name": %q, "model": "tinymlp", "period_ms": %g
	}}`, id, node, name, periodMs)
}

func snapRemoveBody(id uint64, node, name string) string {
	return fmt.Sprintf(`{"request_id": %d, "node": %q, "remove": true, "task": {"name": %q}}`,
		id, node, name)
}

// fillNodes commits a small deterministic task set on two nodes and
// returns the admitted bodies' count as a sanity anchor.
func fillNodes(t *testing.T, url string) {
	t.Helper()
	id := uint64(0)
	for _, node := range []string{"alpha", "beta"} {
		for i := 0; i < 3; i++ {
			id++
			resp, body := post(t, url+"/v1/admit", snapAddBody(id, node, fmt.Sprintf("t%02d", i), float64(60-10*i)))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("fill %s t%02d: status %d: %s", node, i, resp.StatusCode, body)
			}
		}
	}
}

// replaySequence runs the same probe sequence (additions that pass,
// additions that reject, removals) and returns the raw response bodies
// in order — the observable admission behavior.
func replaySequence(t *testing.T, url string) [][]byte {
	t.Helper()
	var out [][]byte
	ops := []string{
		snapAddBody(100, "alpha", "probe", 30),
		snapAddBody(101, "alpha", "flood", 0.8), // tight period: verdict must match either way
		snapRemoveBody(102, "alpha", "probe"),
		snapAddBody(103, "beta", "probe", 28),
		snapRemoveBody(104, "beta", "probe"),
		snapRemoveBody(105, "beta", "ghost"), // never committed
	}
	for i, op := range ops {
		resp, body := post(t, url+"/v1/admit", op)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replay op %d: status %d: %s", i, resp.StatusCode, body)
		}
		out = append(out, body)
	}
	return out
}

// TestSnapshotRoundTripRestore is the snapshot property test: commit
// state, snapshot it over HTTP, restore into a fresh server, and the
// restored server must answer an identical probe sequence with
// byte-identical verdicts — a restored shard is indistinguishable from
// one that never restarted.
func TestSnapshotRoundTripRestore(t *testing.T) {
	_, tsA := newTestServer(t, Config{ShardLabel: "shard-A"})
	fillNodes(t, tsA.URL)

	resp, data := func() (*http.Response, []byte) {
		resp, err := http.Get(tsA.URL + "/v1/snapshot")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot endpoint: status %d: %s", resp.StatusCode, data)
	}
	snap, err := cluster.DecodeSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("exported snapshot does not verify: %v", err)
	}
	if snap.Shard != "shard-A" || len(snap.Nodes) != 2 {
		t.Fatalf("snapshot shard %q with %d nodes, want shard-A with 2", snap.Shard, len(snap.Nodes))
	}

	srvB, tsB := newTestServer(t, Config{})
	n, err := srvB.RestoreSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("restored %d nodes, want 2", n)
	}

	want := replaySequence(t, tsA.URL)
	got := replaySequence(t, tsB.URL)
	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			t.Fatalf("replay op %d diverged after restore:\n  original: %s\n  restored: %s",
				i, want[i], got[i])
		}
	}
}

// TestSnapshotCorruptRejected: a damaged snapshot is refused wholesale
// and the server stays cold and usable.
func TestSnapshotCorruptRejected(t *testing.T) {
	_, tsA := newTestServer(t, Config{})
	fillNodes(t, tsA.URL)
	var buf bytes.Buffer
	resp, err := http.Get(tsA.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	buf.ReadFrom(resp.Body)
	resp.Body.Close()

	srvB, tsB := newTestServer(t, Config{})
	data := buf.Bytes()
	corrupt := bytes.Replace(data, []byte(`"period_ms": 60`), []byte(`"period_ms": 61`), 1)
	if bytes.Equal(corrupt, data) {
		t.Fatal("tamper target not found in snapshot")
	}
	if _, err := srvB.RestoreSnapshot(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("corrupt snapshot restored")
	}
	if _, err := srvB.RestoreSnapshot(bytes.NewReader(data[:len(data)/3])); err == nil {
		t.Fatal("truncated snapshot restored")
	}
	// The refusals left no partial state: alpha is still free to bind.
	resp2, body := post(t, tsB.URL+"/v1/admit", snapAddBody(1, "alpha", "fresh", 50))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("admit after rejected restores: status %d: %s", resp2.StatusCode, body)
	}
}

// TestSnapshotRestoreRefusesDirtyNode: restore is boot-time only — a
// node that already took decisions cannot be silently replaced.
func TestSnapshotRestoreRefusesDirtyNode(t *testing.T) {
	_, tsA := newTestServer(t, Config{})
	fillNodes(t, tsA.URL)
	var buf bytes.Buffer
	resp, err := http.Get(tsA.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	buf.ReadFrom(resp.Body)
	resp.Body.Close()

	srvB, tsB := newTestServer(t, Config{})
	if r, body := post(t, tsB.URL+"/v1/admit", snapAddBody(1, "alpha", "early", 50)); r.StatusCode != http.StatusOK {
		t.Fatalf("pre-restore admit: status %d: %s", r.StatusCode, body)
	}
	if _, err := srvB.RestoreSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("restore replaced a node with live admission state")
	}
}
