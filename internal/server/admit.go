package server

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"rtmdm/internal/analysis"
	"rtmdm/internal/scenario"
	"rtmdm/internal/sim"
)

// AdmitRequest asks a node to accept one more periodic DNN task. The
// first request a node sees pins its platform, policy, and horizon;
// later requests must leave them empty or matching. RequestID orders
// concurrent requests: all requests gathered into one batch window are
// decided in ascending RequestID order (ties broken by task name), so
// the committed set is a deterministic function of the request set, not
// of goroutine interleaving.
type AdmitRequest struct {
	RequestID uint64            `json:"request_id"`
	Node      string            `json:"node"`
	Platform  string            `json:"platform,omitempty"`
	Policy    string            `json:"policy,omitempty"`
	HorizonMs float64           `json:"horizon_ms,omitempty"`
	Task      scenario.TaskSpec `json:"task"`
	// Remove drops the named committed task instead of admitting one.
	// Removal needs no schedulability test — shedding a task only shrinks
	// demand — so it always succeeds when the task exists; only task.name
	// is consulted from Task.
	Remove bool `json:"remove,omitempty"`
}

// AdmitResponse is one admission decision. Committed lists the node's
// task names after the decision (sorted), so a client can audit state
// without another round trip. Admitted reports only accepted
// admissions (it mirrors the server.admit_committed metric); a
// successful removal sets Removed alone and leaves Admitted false.
type AdmitResponse struct {
	RequestID uint64           `json:"request_id"`
	Node      string           `json:"node"`
	Admitted  bool             `json:"admitted"`
	Removed   bool             `json:"removed,omitempty"`
	Test      string           `json:"test,omitempty"`
	Reason    string           `json:"reason,omitempty"`
	WCRTNs    map[string]int64 `json:"wcrt_ns,omitempty"`
	Committed []string         `json:"committed"`
}

// evalFunc judges a candidate scenario. Injected so admitter tests can
// run without model building; when nil (production), each node judges
// candidates through its own analysis.IncrementalAnalyzer, which keeps
// term caches and warm fixpoint starts across the node's admission
// stream.
type evalFunc func(ctx context.Context, sc *scenario.Scenario) (analysis.Verdict, error)

// admitCall is one queued admission request plus its rendezvous.
type admitCall struct {
	req  AdmitRequest
	resp AdmitResponse
	err  error
	done chan struct{}
}

// node is one admission domain: a platform/policy/horizon binding and
// the task set committed so far. Commit/reject is atomic per request —
// a rejected request leaves the committed set untouched, and decisions
// within a batch window are applied in RequestID order.
type node struct {
	mu        sync.Mutex
	platform  string
	policy    string
	horizonMs float64
	bound     bool
	committed []scenario.TaskSpec
	pending   []*admitCall
	draining  bool
	// gone marks a node removed from the admitter's map (handoff release
	// or placeholder replacement) so a submit racing the removal re-fetches
	// instead of appending work to an orphan.
	gone bool
	// inc is the node's incremental analyzer (lazily created; only used
	// when the admitter has no injected evalFunc). It evolves with the
	// committed set: Commit after every accepted change, which keeps warm
	// fixpoint starts valid across single-task additions.
	inc *analysis.IncrementalAnalyzer
}

// admitter routes admission requests to per-node queues and drains each
// queue in deterministic order. The batch window trades latency for
// determinism: requests arriving within window of each other are decided
// as one RequestID-sorted batch.
type admitter struct {
	mu     sync.Mutex
	nodes  map[string]*node
	window time.Duration
	eval   evalFunc
	base   context.Context
	met    *Metrics

	// drainMu/idle guard the live drain-goroutine count. A plain
	// WaitGroup would race: drains are added from request handlers,
	// which can overlap a Wait during shutdown, and WaitGroup forbids
	// a 0→1 Add concurrent with Wait.
	drainMu sync.Mutex
	idle    *sync.Cond
	active  int
}

func newAdmitter(base context.Context, window time.Duration, eval evalFunc, met *Metrics) *admitter {
	a := &admitter{
		nodes:  make(map[string]*node),
		window: window,
		eval:   eval,
		base:   base,
		met:    met,
	}
	a.idle = sync.NewCond(&a.drainMu)
	return a
}

func (a *admitter) addDrain() {
	a.drainMu.Lock()
	a.active++
	a.drainMu.Unlock()
}

func (a *admitter) endDrain() {
	a.drainMu.Lock()
	a.active--
	if a.active == 0 {
		a.idle.Broadcast()
	}
	a.drainMu.Unlock()
}

// waitIdle blocks until no drain goroutine is live. Meaningful once new
// submissions have stopped (shutdown ordering).
func (a *admitter) waitIdle() {
	a.drainMu.Lock()
	for a.active > 0 {
		a.idle.Wait()
	}
	a.drainMu.Unlock()
}

func (a *admitter) node(name string) *node {
	a.mu.Lock()
	defer a.mu.Unlock()
	n, ok := a.nodes[name]
	if !ok {
		n = &node{}
		a.nodes[name] = n
	}
	return n
}

// submit enqueues req on its node and waits for the decision. The wait
// is bounded by ctx, but the decision itself is made under the
// admitter's base context: a client that gives up does not abort a
// batch other clients are riding on.
func (a *admitter) submit(ctx context.Context, req AdmitRequest) (AdmitResponse, error) {
	cl := &admitCall{req: req, done: make(chan struct{})}
	for {
		n := a.node(req.Node)
		n.mu.Lock()
		if n.gone {
			// The node was released (handoff) between the map lookup and
			// the lock; re-fetch so the request lands on live state.
			n.mu.Unlock()
			continue
		}
		n.pending = append(n.pending, cl)
		if !n.draining {
			n.draining = true
			a.addDrain()
			go a.drain(n)
		}
		n.mu.Unlock()
		break
	}
	select {
	case <-cl.done:
		return cl.resp, cl.err
	case <-ctx.Done():
		return AdmitResponse{}, ctx.Err()
	}
}

// drain decides batches for one node until its queue is empty. Each
// batch gathers the requests that arrived during the window, sorts them
// by (RequestID, task name), and decides them sequentially against the
// evolving committed set.
func (a *admitter) drain(n *node) {
	defer a.endDrain()
	for {
		a.wait()
		n.mu.Lock()
		batch := n.pending
		n.pending = nil
		if len(batch) == 0 {
			n.draining = false
			n.mu.Unlock()
			return
		}
		n.mu.Unlock()

		sort.SliceStable(batch, func(i, j int) bool {
			if batch[i].req.RequestID != batch[j].req.RequestID {
				return batch[i].req.RequestID < batch[j].req.RequestID
			}
			return batch[i].req.Task.Name < batch[j].req.Task.Name
		})
		a.met.admitBatches.Inc()
		for _, cl := range batch {
			cl.resp, cl.err = a.decide(n, cl.req)
			close(cl.done)
		}
	}
}

// wait sleeps out the batch window, returning early if the server is
// shutting down (pending requests are still decided, just unbatched).
func (a *admitter) wait() {
	if a.window <= 0 {
		return
	}
	t := time.NewTimer(a.window)
	defer t.Stop()
	select {
	case <-t.C:
	case <-a.base.Done():
	}
}

// decide evaluates one request against the node's committed set and
// commits the task iff the policy's schedulability test passes.
func (a *admitter) decide(n *node, req AdmitRequest) (AdmitResponse, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	resp := AdmitResponse{RequestID: req.RequestID, Node: req.Node, Committed: n.taskNames()}

	if req.Remove {
		return a.decideRemove(n, req, resp)
	}
	if !n.bound {
		n.platform, n.policy, n.horizonMs = req.Platform, req.Policy, req.HorizonMs
		n.bound = true
	} else if err := n.checkBinding(req); err != nil {
		resp.Reason = err.Error()
		return resp, nil
	}
	for _, t := range n.committed {
		if t.Name == req.Task.Name {
			resp.Reason = fmt.Sprintf("task %q already committed on node %q", req.Task.Name, req.Node)
			return resp, nil
		}
	}

	cand := (&scenario.Scenario{
		Platform:  n.platform,
		Policy:    n.policy,
		HorizonMs: n.horizonMs,
		Tasks:     append(append([]scenario.TaskSpec(nil), n.committed...), req.Task),
	}).Canonicalize()
	var v analysis.Verdict
	var err error
	if a.eval != nil {
		v, err = a.eval(a.base, cand)
	} else {
		if n.inc == nil {
			n.inc = analysis.NewIncrementalAnalyzer()
		}
		var st analysis.EvalStats
		v, st, err = n.inc.Evaluate(a.base, cand)
		if st.Warm {
			a.met.admitWarm.Inc()
		}
	}
	if err != nil {
		resp.Reason = err.Error()
		a.met.admitRejected.Inc()
		return resp, nil
	}
	resp.Test = v.Test
	resp.WCRTNs = wcrtNs(v.WCRT)
	if !v.Schedulable {
		resp.Reason = v.Reason
		if resp.Reason == "" {
			resp.Reason = "schedulability test failed"
		}
		a.met.admitRejected.Inc()
		return resp, nil
	}
	n.committed = append(n.committed, req.Task)
	if n.inc != nil {
		n.inc.Commit(cand)
	}
	resp.Admitted = true
	resp.Committed = n.taskNames()
	a.met.admitCommitted.Inc()
	return resp, nil
}

// decideRemove drops a committed task. No schedulability test runs:
// removing a task only shrinks demand, so the remaining set stays
// schedulable. The node's warm analysis state is re-anchored via Commit
// on the shrunk set — since that set was never evaluated, the commit
// clears the warm bounds and the next admission runs cold fixpoints
// (removals restart from the C+L base; see analysis.IncrementalAnalyzer).
// Callers hold n.mu.
func (a *admitter) decideRemove(n *node, req AdmitRequest, resp AdmitResponse) (AdmitResponse, error) {
	if n.bound {
		if err := n.checkBinding(req); err != nil {
			resp.Reason = err.Error()
			return resp, nil
		}
	}
	at := -1
	for i, t := range n.committed {
		if t.Name == req.Task.Name {
			at = i
			break
		}
	}
	if at < 0 {
		resp.Reason = fmt.Sprintf("task %q not committed on node %q", req.Task.Name, req.Node)
		return resp, nil
	}
	n.committed = append(append([]scenario.TaskSpec(nil), n.committed[:at]...), n.committed[at+1:]...)
	if n.inc != nil {
		n.inc.Commit((&scenario.Scenario{
			Platform:  n.platform,
			Policy:    n.policy,
			HorizonMs: n.horizonMs,
			Tasks:     append([]scenario.TaskSpec(nil), n.committed...),
		}).Canonicalize())
	}
	resp.Removed = true
	resp.Committed = n.taskNames()
	return resp, nil
}

// checkBinding rejects requests that contradict the node's pinned
// platform/policy/horizon. Callers hold n.mu.
func (n *node) checkBinding(req AdmitRequest) error {
	if req.Platform != "" && req.Platform != n.platform {
		return fmt.Errorf("node platform is %q, request says %q", n.platform, req.Platform)
	}
	if req.Policy != "" && req.Policy != n.policy {
		return fmt.Errorf("node policy is %q, request says %q", n.policy, req.Policy)
	}
	if req.HorizonMs != 0 && req.HorizonMs != n.horizonMs {
		return fmt.Errorf("node horizon is %v ms, request says %v", n.horizonMs, req.HorizonMs)
	}
	return nil
}

// taskNames returns the committed task names, sorted. Callers hold n.mu.
func (n *node) taskNames() []string {
	names := make([]string, len(n.committed))
	for i, t := range n.committed {
		names[i] = t.Name
	}
	sort.Strings(names)
	return names
}

// committedTasks returns a snapshot of a node's committed task names for
// tests and state inspection; nil if the node does not exist.
func (a *admitter) committedTasks(nodeName string) []string {
	a.mu.Lock()
	n, ok := a.nodes[nodeName]
	a.mu.Unlock()
	if !ok {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.taskNames()
}

// wcrtNs converts a verdict's WCRT map to int64 nanoseconds for the
// wire. Returns nil for empty maps so the JSON field is omitted.
func wcrtNs(m map[string]sim.Duration) map[string]int64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = int64(v)
	}
	return out
}
