package server

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"rtmdm/internal/analysis"
	"rtmdm/internal/metrics"
	"rtmdm/internal/scenario"
)

// counterValue reads one counter out of a registry snapshot.
func counterValue(t *testing.T, reg *metrics.Registry, name string) int64 {
	t.Helper()
	s, ok := reg.Snapshot().Get(name)
	if !ok {
		t.Fatalf("metric %s not registered", name)
	}
	return s.Value
}

// capEval admits while the candidate set holds at most max tasks — a
// monotone stand-in for the real schedulability test, so admitter logic
// is exercised without model building.
func capEval(max int) evalFunc {
	return func(_ context.Context, sc *scenario.Scenario) (analysis.Verdict, error) {
		ok := len(sc.Tasks) <= max
		v := analysis.Verdict{Test: "cap", Schedulable: ok}
		if !ok {
			v.Reason = fmt.Sprintf("capacity %d exceeded", max)
		}
		return v, nil
	}
}

func testAdmitter(window time.Duration, eval evalFunc) *admitter {
	return newAdmitter(context.Background(), window, eval, testMetrics())
}

func admitReq(id uint64, node, task string) AdmitRequest {
	return AdmitRequest{
		RequestID: id,
		Node:      node,
		Task:      scenario.TaskSpec{Name: task, Model: "lenet5", PeriodMs: 100},
	}
}

func TestAdmitSequential(t *testing.T) {
	a := testAdmitter(0, capEval(2))
	ctx := context.Background()

	for i, want := range []bool{true, true, false} {
		resp, err := a.submit(ctx, admitReq(uint64(i+1), "n0", fmt.Sprintf("t%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Admitted != want {
			t.Fatalf("request %d admitted=%t; want %t (%s)", i+1, resp.Admitted, want, resp.Reason)
		}
	}
	if got := a.committedTasks("n0"); !reflect.DeepEqual(got, []string{"t0", "t1"}) {
		t.Fatalf("committed %v; want [t0 t1]", got)
	}
	a.waitIdle()
}

func TestAdmitDuplicateName(t *testing.T) {
	a := testAdmitter(0, capEval(10))
	ctx := context.Background()
	if resp, _ := a.submit(ctx, admitReq(1, "n0", "same")); !resp.Admitted {
		t.Fatal("first admit rejected")
	}
	resp, err := a.submit(ctx, admitReq(2, "n0", "same"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Admitted {
		t.Fatal("duplicate task name admitted")
	}
	a.waitIdle()
}

func TestAdmitBindingConflict(t *testing.T) {
	a := testAdmitter(0, capEval(10))
	ctx := context.Background()
	first := admitReq(1, "n0", "t0")
	first.Policy = "rt-mdm"
	if resp, _ := a.submit(ctx, first); !resp.Admitted {
		t.Fatal("first admit rejected")
	}
	second := admitReq(2, "n0", "t1")
	second.Policy = "serial-npfp"
	resp, err := a.submit(ctx, second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Admitted || resp.Reason == "" {
		t.Fatalf("conflicting policy admitted: %+v", resp)
	}
	// The committed set must be untouched by the rejection.
	if got := a.committedTasks("n0"); !reflect.DeepEqual(got, []string{"t0"}) {
		t.Fatalf("committed %v; want [t0]", got)
	}
	a.waitIdle()
}

// TestAdmitConcurrentDeterministic is the -race determinism pin: N
// goroutines race distinct request IDs at one node, and the outcome —
// per-request decisions and the final committed set — must equal the
// sequential ID-order run, regardless of goroutine interleaving.
func TestAdmitConcurrentDeterministic(t *testing.T) {
	const n = 8
	const capacity = 3

	// Reference: sequential, ascending IDs, no batching.
	seq := testAdmitter(0, capEval(capacity))
	wantAdmit := make([]bool, n)
	for i := 0; i < n; i++ {
		resp, err := seq.submit(context.Background(), admitReq(uint64(i+1), "ref", fmt.Sprintf("t%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		wantAdmit[i] = resp.Admitted
	}
	want := seq.committedTasks("ref")
	seq.waitIdle()

	for round := 0; round < 3; round++ {
		// A generous window so every racing goroutine lands in one batch
		// even on a loaded CI machine.
		a := testAdmitter(100*time.Millisecond, capEval(capacity))
		gotAdmit := make([]bool, n)
		var race sync.WaitGroup
		for i := 0; i < n; i++ {
			race.Add(1)
			go func(i int) {
				defer race.Done()
				resp, err := a.submit(context.Background(), admitReq(uint64(i+1), "node", fmt.Sprintf("t%d", i)))
				if err != nil {
					t.Error(err)
					return
				}
				gotAdmit[i] = resp.Admitted
			}(i)
		}
		race.Wait()
		a.waitIdle()
		if got := a.committedTasks("node"); !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: committed %v; want %v", round, got, want)
		}
		if !reflect.DeepEqual(gotAdmit, wantAdmit) {
			t.Fatalf("round %d: decisions %v; want %v", round, gotAdmit, wantAdmit)
		}
	}
}

// TestAdmitRealEvaluator exercises the production path (nil evalFunc →
// per-node incremental analyzer) end to end: small models admit, and
// verdicts carry WCRT bounds for committed tasks.
func TestAdmitRealEvaluator(t *testing.T) {
	a := testAdmitter(0, nil)
	ctx := context.Background()
	req := admitReq(1, "mcu0", "kws")
	req.Task.Model = "ds-cnn"
	req.Task.PeriodMs = 100
	resp, err := a.submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Admitted {
		t.Fatalf("ds-cnn @100ms rejected: %s", resp.Reason)
	}
	if len(resp.WCRTNs) == 0 || resp.WCRTNs["kws"] <= 0 {
		t.Fatalf("no WCRT bound in response: %+v", resp)
	}
	a.waitIdle()
}

// TestAdmitRemove covers the removal op: dropping a committed task frees
// capacity (a previously rejected admission then succeeds), removing an
// unknown task fails without touching state, and responses flag Removed.
func TestAdmitRemove(t *testing.T) {
	a := testAdmitter(0, capEval(1))
	ctx := context.Background()
	if resp, _ := a.submit(ctx, admitReq(1, "n0", "t0")); !resp.Admitted {
		t.Fatal("first admit rejected")
	}
	if resp, _ := a.submit(ctx, admitReq(2, "n0", "t1")); resp.Admitted {
		t.Fatal("over-capacity admit accepted")
	}

	rm := admitReq(3, "n0", "t0")
	rm.Remove = true
	resp, err := a.submit(ctx, rm)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Removed {
		t.Fatalf("remove failed: %+v", resp)
	}
	if resp.Admitted {
		t.Fatalf("removal set Admitted (reserved for accepted admissions): %+v", resp)
	}
	if len(resp.Committed) != 0 {
		t.Fatalf("committed %v after removal; want empty", resp.Committed)
	}

	rm.RequestID = 4
	if resp, _ := a.submit(ctx, rm); resp.Admitted || resp.Reason == "" {
		t.Fatalf("removing an absent task succeeded: %+v", resp)
	}

	if resp, _ := a.submit(ctx, admitReq(5, "n0", "t1")); !resp.Admitted {
		t.Fatalf("admit after removal rejected: %s", resp.Reason)
	}
	a.waitIdle()
}

// TestAdmitIncrementalWarm drives the production analyzer through a
// realistic admission stream — several commits, a rejected probe, a
// removal — and checks the committed set plus the warm metric. The node
// pins a serial policy: serial segmentation ignores the set size, so
// committed fixpoint bounds stay sound warm starts across additions
// (under the prefetch policies a size change re-segments every task and
// warm starts are refused — pinned at the end of this test).
func TestAdmitIncrementalWarm(t *testing.T) {
	reg := metrics.NewRegistry()
	a := newAdmitter(context.Background(), 0, nil, RegisterMetrics(reg))
	ctx := context.Background()

	mk := func(id uint64, name string, periodMs float64) AdmitRequest {
		return AdmitRequest{RequestID: id, Node: "mcu0", Policy: "serial-segfp",
			Task: scenario.TaskSpec{Name: name, Model: "tinymlp", PeriodMs: periodMs}}
	}
	// Admit with descending periods: each new task outranks the committed
	// ones under RM, so the committed tasks keep their base terms and
	// their previous bounds (which include real interference) are usable
	// warm starts. The first two admissions cannot warm-start — "a" alone
	// converges at its base — but from the third on at least one
	// committed fixpoint must.
	if resp, _ := a.submit(ctx, mk(1, "a", 200)); !resp.Admitted {
		t.Fatalf("admit a: %s", resp.Reason)
	}
	if resp, _ := a.submit(ctx, mk(2, "b", 100)); !resp.Admitted {
		t.Fatalf("admit b: %s", resp.Reason)
	}
	if resp, _ := a.submit(ctx, mk(3, "c", 50)); !resp.Admitted {
		t.Fatalf("admit c: %s", resp.Reason)
	}
	warmAfterC := counterValue(t, reg, "server.admit_warm")
	if warmAfterC == 0 {
		t.Fatal("third admission did not warm-start any fixpoint")
	}
	// An infeasible probe (period far below the model's demand) is cut
	// off by the necessary-condition screen and must not disturb the
	// committed warm state.
	if resp, _ := a.submit(ctx, mk(4, "probe", 0.001)); resp.Admitted {
		t.Fatal("infeasible probe admitted")
	}
	if resp, _ := a.submit(ctx, mk(5, "d", 40)); !resp.Admitted {
		t.Fatalf("admit d after rejected probe: %s", resp.Reason)
	}
	if got := counterValue(t, reg, "server.admit_warm"); got <= warmAfterC {
		t.Fatalf("admit_warm stuck at %d after more admissions", got)
	}

	rm := mk(6, "b", 0)
	rm.Remove = true
	if resp, _ := a.submit(ctx, rm); !resp.Removed {
		t.Fatalf("remove b: %+v", resp)
	}
	if got := a.committedTasks("mcu0"); !reflect.DeepEqual(got, []string{"a", "c", "d"}) {
		t.Fatalf("committed %v; want [a c d]", got)
	}
	// Post-removal the warm state is cleared; the next admission runs
	// cold and must still decide correctly.
	if resp, _ := a.submit(ctx, mk(7, "e", 30)); !resp.Admitted {
		t.Fatalf("admit e after removal: %s", resp.Reason)
	}

	// Prefetch policy (the default): SegmentBudget depends on the set
	// size, so an addition re-segments every committed task and the
	// analyzer must refuse warm starts — admit_warm stays flat no matter
	// how many tasks the node commits.
	warmBefore := counterValue(t, reg, "server.admit_warm")
	for i, p := range []float64{200, 100, 50, 40} {
		req := AdmitRequest{RequestID: uint64(10 + i), Node: "mcu1", Policy: "rt-mdm",
			Task: scenario.TaskSpec{Name: fmt.Sprintf("p%d", i), Model: "tinymlp", PeriodMs: p}}
		if resp, _ := a.submit(ctx, req); !resp.Admitted {
			t.Fatalf("rt-mdm admit p%d: %s", i, resp.Reason)
		}
	}
	if got := counterValue(t, reg, "server.admit_warm"); got != warmBefore {
		t.Fatalf("prefetch-policy additions warm-started (admit_warm %d -> %d); unsound across set sizes", warmBefore, got)
	}
	a.waitIdle()
}
