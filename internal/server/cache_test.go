package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func testMetrics() *Metrics { return RegisterMetrics(nil) }

func TestCacheHitAfterMiss(t *testing.T) {
	c := newResultCache(4, 0, testMetrics())
	calls := 0
	fn := func() ([]byte, error) { calls++; return []byte("r1"), nil }

	data, src, err := c.do(context.Background(), "k", fn)
	if err != nil || string(data) != "r1" || src != cacheMiss {
		t.Fatalf("first do: %q %s %v", data, src, err)
	}
	data, src, err = c.do(context.Background(), "k", fn)
	if err != nil || string(data) != "r1" || src != cacheHit {
		t.Fatalf("second do: %q %s %v", data, src, err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times; want 1", calls)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2, 0, testMetrics())
	for i := 0; i < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		c.do(context.Background(), k, func() ([]byte, error) { return []byte(k), nil })
	}
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries; want 2", c.len())
	}
	// k0 is the LRU victim; k2 must still be resident.
	ran := false
	_, src, _ := c.do(context.Background(), "k2", func() ([]byte, error) { ran = true; return nil, nil })
	if src != cacheHit || ran {
		t.Fatalf("k2 source %s (recomputed=%t); want hit", src, ran)
	}
	_, src, _ = c.do(context.Background(), "k0", func() ([]byte, error) { return []byte("k0"), nil })
	if src != cacheMiss {
		t.Fatalf("k0 source %s; want miss after eviction", src)
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := newResultCache(4, 0, testMetrics())
	boom := errors.New("boom")
	if _, _, err := c.do(context.Background(), "k", func() ([]byte, error) { return nil, boom }); err != boom {
		t.Fatalf("err = %v; want boom", err)
	}
	_, src, err := c.do(context.Background(), "k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || src != cacheMiss {
		t.Fatalf("after error: src %s err %v; want a fresh miss", src, err)
	}
}

func TestCacheOversizedNotStored(t *testing.T) {
	c := newResultCache(4, 2, testMetrics())
	big := []byte("too big")
	data, src, err := c.do(context.Background(), "k", func() ([]byte, error) { return big, nil })
	if err != nil || string(data) != "too big" || src != cacheMiss {
		t.Fatalf("oversized do: %q %s %v", data, src, err)
	}
	if c.len() != 0 {
		t.Fatalf("oversized entry was stored (len %d)", c.len())
	}
}

// TestCacheCoalescing pins singleflight: concurrent requests for one key
// run fn once; followers report coalesced and see the leader's bytes.
func TestCacheCoalescing(t *testing.T) {
	c := newResultCache(4, 0, testMetrics())
	gate := make(chan struct{})
	entered := make(chan struct{})
	var calls int
	var mu sync.Mutex

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		c.do(context.Background(), "k", func() ([]byte, error) {
			mu.Lock()
			calls++
			mu.Unlock()
			close(entered)
			<-gate
			return []byte("shared"), nil
		})
	}()
	<-entered

	const followers = 4
	results := make([]string, followers)
	sources := make([]string, followers)
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, src, err := c.do(context.Background(), "k", func() ([]byte, error) {
				mu.Lock()
				calls++
				mu.Unlock()
				return []byte("rogue"), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], sources[i] = string(data), src
		}(i)
	}
	// Give the followers time to reach the inflight wait before the
	// leader finishes; a straggler that arrives after completion reads
	// the stored entry instead, which is equally correct — the strict
	// invariant is one fn run and one shared result.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()
	<-leaderDone

	if calls != 1 {
		t.Fatalf("fn ran %d times; want 1", calls)
	}
	coalesced := 0
	for i := 0; i < followers; i++ {
		if results[i] != "shared" {
			t.Fatalf("follower %d: %q %s; want shared", i, results[i], sources[i])
		}
		switch sources[i] {
		case cacheCoalesced:
			coalesced++
		case cacheHit:
		default:
			t.Fatalf("follower %d reported source %s", i, sources[i])
		}
	}
	if coalesced == 0 {
		t.Fatal("no follower coalesced onto the in-flight leader")
	}
}

// TestCacheCoalescedFollowerCancel verifies a follower's dead context
// releases it without waiting for the leader.
func TestCacheCoalescedFollowerCancel(t *testing.T) {
	c := newResultCache(4, 0, testMetrics())
	gate := make(chan struct{})
	entered := make(chan struct{})
	go func() {
		c.do(context.Background(), "k", func() ([]byte, error) {
			close(entered)
			<-gate
			return []byte("late"), nil
		})
	}()
	<-entered
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.do(ctx, "k", func() ([]byte, error) { return nil, nil })
	close(gate)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("follower err = %v; want context.Canceled", err)
	}
}

func TestPoolBackpressure(t *testing.T) {
	p := newWorkPool(1, 1)
	rel1, err := p.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Second admission queues (slot busy); use a canceled ctx so the
	// wait is bounded.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued acquire err = %v; want context.Canceled", err)
	}
	// Queue slot was returned on cancel; fill it again and overflow.
	hold := make(chan struct{})
	acquired := make(chan struct{})
	go func() {
		rel, err := p.acquire(context.Background())
		if err != nil {
			t.Error(err)
			close(acquired)
			return
		}
		close(acquired)
		<-hold
		rel()
	}()
	// Wait until the goroutine occupies the queue slot (it blocks on the
	// worker slot, not the queue).
	for p.depth() != 2 {
		time.Sleep(time.Millisecond)
	}
	if _, err := p.acquire(context.Background()); err != errBusy {
		t.Fatalf("overflow acquire err = %v; want errBusy", err)
	}
	rel1()
	<-acquired
	close(hold)
}
