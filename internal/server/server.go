// Package server exposes the RT-MDM engine as a long-running HTTP/JSON
// service: offline schedulability analysis (/v1/analyze), bounded
// deterministic simulation (/v1/simulate), and stateful incremental
// admission control (/v1/admit), plus /healthz and /v1/metrics.
//
// The service is stdlib-only and built for sustained load: a bounded
// worker pool sheds excess compute requests with 429 instead of queueing
// unboundedly, per-request deadlines abort runaway analyses through
// context cancellation, identical requests coalesce onto one computation
// (singleflight) whose marshaled result is LRU-cached — sound because
// the engine is deterministic — and shutdown drains in-flight work
// before the process exits.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"rtmdm/internal/exec"
	"rtmdm/internal/metrics"
	"rtmdm/internal/scenario"
)

// Config sizes the service. The zero value is usable: every field has a
// production default applied by New.
type Config struct {
	// Workers caps concurrent heavy computations (default GOMAXPROCS).
	Workers int
	// QueueDepth caps requests waiting for a worker beyond the running
	// ones; past it the server answers 429 (default 64; negative
	// disables queueing so load sheds as soon as all workers are busy).
	QueueDepth int
	// RequestTimeout bounds each compute request, enforced through
	// context cancellation in the analysis and simulation loops
	// (default 15s).
	RequestTimeout time.Duration
	// CacheEntries caps the result LRU (default 256; 0 uses the
	// default, negative disables caching).
	CacheEntries int
	// CacheMaxEntryBytes skips caching oversized responses, e.g.
	// simulations with embedded traces (default 4 MiB).
	CacheMaxEntryBytes int
	// AdmitWindow is the admission batching window: concurrent admit
	// requests arriving within it are decided as one batch in
	// request_id order (default 2ms; negative disables batching).
	AdmitWindow time.Duration
	// MaxHorizonMs rejects simulation/admission scenarios whose horizon
	// exceeds the bound, keeping requests bounded (default 60000).
	MaxHorizonMs float64
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// Registry receives the server.* metric family; nil disables
	// instrumentation.
	Registry *metrics.Registry
	// ShardLabel names this instance in exported admission snapshots
	// (GET /v1/snapshot and shutdown dumps); empty is fine for a
	// single-process deployment.
	ShardLabel string
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 15 * time.Second
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.CacheMaxEntryBytes <= 0 {
		c.CacheMaxEntryBytes = 4 << 20
	}
	if c.AdmitWindow == 0 {
		c.AdmitWindow = 2 * time.Millisecond
	}
	if c.MaxHorizonMs <= 0 {
		c.MaxHorizonMs = 60000
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// Server is the HTTP service. Create with New, mount as an http.Handler,
// and call Shutdown before exit to drain in-flight work.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	met    *Metrics
	cache  *resultCache
	pool   *workPool
	adm    *admitter
	base   context.Context
	cancel context.CancelFunc
	// ready gates GET /readyz: orchestrators route traffic only while it
	// is true. Liveness (/healthz) stays 200 through the not-ready phases.
	ready atomic.Bool
}

// Routes is the server's route table, shared by New and the
// docs/SERVER.md doc-sync test so the documented endpoint list cannot
// drift from the mounted one.
func Routes() []string {
	return []string{
		"GET /healthz",
		"GET /readyz",
		"GET /v1/export",
		"GET /v1/metrics",
		"GET /v1/snapshot",
		"POST /v1/admit",
		"POST /v1/analyze",
		"POST /v1/import",
		"POST /v1/simulate",
	}
}

// New builds a ready-to-serve Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	// Audited lifecycle root: the server's base context outlives any one
	// request; Shutdown cancels it to release in-flight waiters.
	base, cancel := context.WithCancel(context.Background()) //lint:allow ctxflow -- server-lifetime root; cancelled by Shutdown, not tied to any request
	s := &Server{
		cfg:    cfg,
		mux:    http.NewServeMux(),
		met:    RegisterMetrics(cfg.Registry),
		pool:   newWorkPool(cfg.Workers, cfg.QueueDepth),
		base:   base,
		cancel: cancel,
	}
	s.cache = newResultCache(cfg.CacheEntries, cfg.CacheMaxEntryBytes, s.met)
	// nil evalFunc: each node judges candidates through its own
	// incremental analyzer (warm fixpoint starts + term caches), falling
	// back to the cold path whenever warm state cannot apply.
	s.adm = newAdmitter(base, cfg.AdmitWindow, nil, s.met)

	handlers := map[string]http.HandlerFunc{
		"GET /healthz":      s.handleHealthz,
		"GET /readyz":       s.handleReadyz,
		"GET /v1/export":    s.handleExport,
		"GET /v1/metrics":   s.handleMetrics,
		"GET /v1/snapshot":  s.handleSnapshotHTTP,
		"POST /v1/admit":    s.handleAdmit,
		"POST /v1/analyze":  s.handleAnalyze,
		"POST /v1/import":   s.handleImport,
		"POST /v1/simulate": s.handleSimulate,
	}
	for _, pattern := range Routes() {
		s.handle(pattern, handlers[pattern])
	}
	s.ready.Store(true)
	return s
}

// SetReady flips the /readyz gate. cmd/rtmdm-serve clears it at the
// start of graceful shutdown — before the listener closes — so
// orchestrators and gateways stop sending new work while in-flight
// requests finish; boot-time restore happens before the listener opens,
// so a reachable server has always restored its snapshot.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown drains detached work (admission batches) and then cancels
// the server's base context, aborting anything still computing. Call it
// after http.Server.Shutdown has stopped new requests. Returns ctx.Err()
// if the drain outlived ctx (work is still aborted via cancellation).
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	done := make(chan struct{})
	go func() { s.adm.waitIdle(); close(done) }()
	select {
	case <-done:
		s.cancel()
		return nil
	case <-ctx.Done():
		s.cancel()
		<-done
		return ctx.Err()
	}
}

// handle mounts h under the shared middleware: request accounting,
// latency observation, and panic-to-500 recovery. A recovered panic is
// wrapped in exec.InternalError so the response carries the same
// structured shape the executor's own boundary produces.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.met.requests.Inc()
		s.met.inflight.Add(1)
		defer func() {
			s.met.inflight.Add(-1)
			s.met.latency.Observe(time.Since(start).Nanoseconds())
			if v := recover(); v != nil {
				s.met.panics.Inc()
				ie := &exec.InternalError{Panic: v, Stack: string(debug.Stack())}
				writeError(w, http.StatusInternalServerError, ie.Error())
			}
		}()
		h(w, r)
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe, distinct from liveness: 200 only
// while the server should receive new traffic. A draining server is
// alive (healthz 200) but not ready (readyz 503).
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Registry == nil {
		writeError(w, http.StatusNotFound, "metrics registry not enabled")
		return
	}
	s.met.queueDepth.Set(int64(s.pool.depth()))
	w.Header().Set("Content-Type", "application/json")
	if err := s.cfg.Registry.Snapshot().WriteJSON(w); err != nil {
		// Headers are gone; nothing recoverable remains.
		return
	}
}

// handleSnapshotHTTP serves the sealed admission snapshot — the state a
// replacement shard restores from (docs/CLUSTER.md). Exported from a
// live server it reflects the decisions committed so far; a quiescent
// export happens on shutdown via the -snapshot flag.
func (s *Server) handleSnapshotHTTP(w http.ResponseWriter, _ *http.Request) {
	snap, err := s.ExportState(s.cfg.ShardLabel)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	snap.Encode(w)
}

// compute runs the cached/coalesced/pooled computation pipeline shared
// by /v1/analyze and /v1/simulate: cache lookup by key, singleflight on
// miss, worker-pool admission for the leader, and a detached deadline so
// one client's disconnect cannot poison a result other requests wait on.
func (s *Server) compute(w http.ResponseWriter, r *http.Request, key string, fn func(ctx context.Context) ([]byte, error)) {
	data, source, err := s.cache.do(r.Context(), key, func() ([]byte, error) {
		release, err := s.pool.acquire(r.Context())
		if err != nil {
			return nil, err
		}
		defer release()
		// The leader computes under the server's lifetime, not the
		// client's: coalesced followers depend on this result.
		ctx, cancel := context.WithTimeout(s.base, s.cfg.RequestTimeout)
		defer cancel()
		return fn(ctx)
	})
	w.Header().Set("X-Rtmdm-Cache", source)
	switch {
	case err == errBusy:
		s.met.rejected.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "worker pool saturated; retry shortly")
	case err == context.DeadlineExceeded:
		s.met.timeouts.Inc()
		writeError(w, http.StatusGatewayTimeout, "request deadline exceeded")
	case err == context.Canceled:
		// The client went away (or the server is shutting down); a
		// status for the log is all that is left to send.
		writeError(w, http.StatusServiceUnavailable, "request canceled")
	case err != nil:
		writeError(w, http.StatusUnprocessableEntity, err.Error())
	default:
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	}
}

// parseScenario decodes, validates, canonicalizes, and hashes a raw
// scenario payload, enforcing the horizon bound.
func (s *Server) parseScenario(raw json.RawMessage) (*scenario.Scenario, string, error) {
	if len(raw) == 0 {
		return nil, "", fmt.Errorf("missing scenario")
	}
	sc, err := scenario.Parse(raw)
	if err != nil {
		return nil, "", err
	}
	canon := sc.Canonicalize()
	if canon.HorizonMs > s.cfg.MaxHorizonMs {
		return nil, "", fmt.Errorf("horizon %v ms exceeds the server bound %v ms",
			canon.HorizonMs, s.cfg.MaxHorizonMs)
	}
	hash, err := scenario.CanonicalHash(canon)
	if err != nil {
		return nil, "", err
	}
	return canon, hash, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// decodeBody decodes a JSON request body strictly (unknown fields are
// errors) with the configured size cap.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode request: %w", err)
	}
	return nil
}

// retryAfterSeconds is exported-for-tests glue ensuring the header stays
// a parseable integer.
func retryAfterSeconds(h http.Header) (int, error) {
	return strconv.Atoi(h.Get("Retry-After"))
}
