package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"

	"rtmdm/internal/cluster"
)

// exportNodeHTTP fetches one node's sealed export and its decoded form.
func exportNodeHTTP(t *testing.T, url, node string) ([]byte, *cluster.Snapshot) {
	t.Helper()
	resp, err := http.Get(url + "/v1/export?node=" + node)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export %s: status %d: %s", node, resp.StatusCode, body)
	}
	snap, err := cluster.DecodeSnapshot(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("export %s does not verify: %v", node, err)
	}
	return body, snap
}

func importHTTP(t *testing.T, url string, body []byte) (*http.Response, importResponse) {
	t.Helper()
	resp, raw := post(t, url+"/v1/import", string(body))
	var out importResponse
	json.Unmarshal(raw, &out)
	return resp, out
}

func releaseBody(node, hash string) []byte {
	return []byte(fmt.Sprintf(`{"release":{"node":%q,"hash":%q}}`, node, hash))
}

// TestHandoffExportImportRoundTrip moves one node between two live
// servers and checks the moved node behaves identically on the new
// owner, including idempotent re-import and conflict on divergence.
func TestHandoffExportImportRoundTrip(t *testing.T) {
	_, tsA := newTestServer(t, Config{ShardLabel: "shard-0"})
	fillNodes(t, tsA.URL) // commits t00..t02 on alpha and beta

	body, snap := exportNodeHTTP(t, tsA.URL, "alpha")
	if len(snap.Nodes) != 1 || snap.Nodes[0].Node != "alpha" {
		t.Fatalf("export holds %d nodes (%+v), want just alpha", len(snap.Nodes), snap.Nodes)
	}
	hash := snap.Nodes[0].Hash

	srvB, tsB := newTestServer(t, Config{})
	resp, out := importHTTP(t, tsB.URL, body)
	if resp.StatusCode != http.StatusOK || !out.Installed || out.Hash != hash {
		t.Fatalf("import: status %d, %+v (want installed with hash %.12s…)", resp.StatusCode, out, hash)
	}

	// Idempotent re-import: same bytes, no-op success.
	resp, out = importHTTP(t, tsB.URL, body)
	if resp.StatusCode != http.StatusOK || out.Installed || out.Hash != hash {
		t.Fatalf("re-import: status %d, %+v (want no-op success)", resp.StatusCode, out)
	}

	// The moved node admits on B exactly as it would have on A: a
	// duplicate task name is refused, a fresh one is admitted against the
	// transferred committed set.
	r, raw := post(t, tsB.URL+"/v1/admit", snapAddBody(50, "alpha", "t00", 60))
	var dup AdmitResponse
	json.Unmarshal(raw, &dup)
	if r.StatusCode != http.StatusOK || dup.Admitted {
		t.Fatalf("duplicate admit after import: status %d, %+v", r.StatusCode, dup)
	}
	r, raw = post(t, tsB.URL+"/v1/admit", snapAddBody(51, "alpha", "t99", 80))
	var add AdmitResponse
	json.Unmarshal(raw, &add)
	if r.StatusCode != http.StatusOK || !add.Admitted || len(add.Committed) != 4 {
		t.Fatalf("fresh admit after import: status %d, %+v", r.StatusCode, add)
	}

	// B's state has diverged: the original import must now conflict.
	srvB.adm.waitIdle()
	resp, _ = importHTTP(t, tsB.URL, body)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("import over diverged state: status %d, want 409", resp.StatusCode)
	}
}

// TestHandoffReleaseHashGuard: release deletes only when the caller's
// hash matches the live state; stale hashes conflict, absent nodes are
// idempotent no-ops.
func TestHandoffReleaseHashGuard(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	fillNodes(t, ts.URL)
	_, snap := exportNodeHTTP(t, ts.URL, "alpha")
	hash := snap.Nodes[0].Hash

	// Mutate alpha after the export: the old hash must no longer release.
	if r, body := post(t, ts.URL+"/v1/admit", snapAddBody(60, "alpha", "late", 90)); r.StatusCode != http.StatusOK {
		t.Fatalf("mutating admit: status %d: %s", r.StatusCode, body)
	}
	srv.adm.waitIdle()
	resp, _ := importHTTP(t, ts.URL, releaseBody("alpha", hash))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale release: status %d, want 409", resp.StatusCode)
	}

	// Re-export for the current hash; that release succeeds.
	_, snap = exportNodeHTTP(t, ts.URL, "alpha")
	resp, out := importHTTP(t, ts.URL, releaseBody("alpha", snap.Nodes[0].Hash))
	if resp.StatusCode != http.StatusOK || !out.Released {
		t.Fatalf("release: status %d, %+v", resp.StatusCode, out)
	}

	// Gone: export 404s, release is an idempotent no-op.
	er, err := http.Get(ts.URL + "/v1/export?node=alpha")
	if err != nil {
		t.Fatal(err)
	}
	er.Body.Close()
	if er.StatusCode != http.StatusNotFound {
		t.Fatalf("export after release: status %d, want 404", er.StatusCode)
	}
	resp, out = importHTTP(t, ts.URL, releaseBody("alpha", snap.Nodes[0].Hash))
	if resp.StatusCode != http.StatusOK || out.Released {
		t.Fatalf("repeat release: status %d, %+v (want no-op success)", resp.StatusCode, out)
	}

	// beta was never touched.
	_, snapB := exportNodeHTTP(t, ts.URL, "beta")
	if len(snapB.Nodes[0].Tasks) != 3 {
		t.Fatalf("beta lost state: %+v", snapB.Nodes[0])
	}
}

// TestHandoffReleasedNodeRebindsCold: after a release, the name is free
// — a new admission stream binds it from scratch (this is what lets a
// later reshard move it back).
func TestHandoffReleasedNodeRebindsCold(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	fillNodes(t, ts.URL)
	srv.adm.waitIdle()
	_, snap := exportNodeHTTP(t, ts.URL, "alpha")
	if resp, _ := importHTTP(t, ts.URL, releaseBody("alpha", snap.Nodes[0].Hash)); resp.StatusCode != http.StatusOK {
		t.Fatalf("release failed: %d", resp.StatusCode)
	}
	r, raw := post(t, ts.URL+"/v1/admit", snapAddBody(70, "alpha", "reborn", 45))
	var out AdmitResponse
	json.Unmarshal(raw, &out)
	if r.StatusCode != http.StatusOK || !out.Admitted || len(out.Committed) != 1 {
		t.Fatalf("rebind after release: status %d, %+v", r.StatusCode, out)
	}
}

// TestHandoffImportRejectsBadBodies: garbage, multi-node snapshots, and
// tampered snapshots are refused before any state changes.
func TestHandoffImportRejectsBadBodies(t *testing.T) {
	_, tsA := newTestServer(t, Config{})
	fillNodes(t, tsA.URL)
	_, tsB := newTestServer(t, Config{})

	if resp, _ := importHTTP(t, tsB.URL, []byte(`{"not":"a snapshot"}`)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage import: status %d, want 400", resp.StatusCode)
	}

	// Full two-node snapshot: valid as a snapshot, but not a per-node
	// handoff document.
	full, err := http.Get(tsA.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	fullBody, _ := io.ReadAll(full.Body)
	full.Body.Close()
	if resp, _ := importHTTP(t, tsB.URL, fullBody); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("multi-node import: status %d, want 400", resp.StatusCode)
	}

	body, _ := exportNodeHTTP(t, tsA.URL, "alpha")
	tampered := bytes.Replace(body, []byte(`"period_ms": 60`), []byte(`"period_ms": 59`), 1)
	if bytes.Equal(tampered, body) {
		t.Fatal("tamper target not found")
	}
	if resp, _ := importHTTP(t, tsB.URL, tampered); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("tampered import: status %d, want 400", resp.StatusCode)
	}
	// Nothing installed: alpha still binds fresh on B.
	if r, raw := post(t, tsB.URL+"/v1/admit", snapAddBody(1, "alpha", "fresh", 50)); r.StatusCode != http.StatusOK {
		t.Fatalf("admit after rejected imports: status %d: %s", r.StatusCode, raw)
	}
}

// TestReadyzDistinctFromHealthz: shutdown flips readiness off while
// liveness stays up, and SetReady is an explicit override.
func TestReadyzDistinctFromHealthz(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz at boot: %d", got)
	}
	srv.SetReady(false)
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz after SetReady(false): %d", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz must stay live while not ready: %d", got)
	}
	srv.SetReady(true)
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz after SetReady(true): %d", got)
	}
}
