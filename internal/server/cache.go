package server

import (
	"container/list"
	"context"
	"sync"
)

// Cache-source labels exposed in the X-Rtmdm-Cache response header.
const (
	cacheHit       = "hit"       // served from the LRU store
	cacheMiss      = "miss"      // this request computed the result
	cacheCoalesced = "coalesced" // waited on another request's computation
)

// call is one in-flight computation shared by a singleflight group: the
// leader fills data/err and closes done; followers block on done.
type call struct {
	done chan struct{}
	data []byte
	err  error
}

// resultCache is an LRU of marshaled response bodies keyed by canonical
// request identity, with singleflight coalescing of concurrent misses.
// Caching bytes (not decoded results) makes the hit path a map lookup
// plus a write — no rebuild, no re-analysis, no re-marshal. Soundness
// rests on the engine being deterministic: identical canonical scenarios
// produce identical results, so replaying stored bytes is exact.
type resultCache struct {
	mu       sync.Mutex
	capacity int
	maxEntry int
	entries  map[string]*list.Element
	order    *list.List // front = most recent; values are *cacheEntry
	inflight map[string]*call
	met      *Metrics
}

type cacheEntry struct {
	key  string
	data []byte
}

func newResultCache(capacity, maxEntryBytes int, met *Metrics) *resultCache {
	return &resultCache{
		capacity: capacity,
		maxEntry: maxEntryBytes,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		inflight: make(map[string]*call),
		met:      met,
	}
}

// do returns the cached bytes for key, or computes them via fn. Exactly
// one caller per key runs fn at a time; concurrent callers coalesce onto
// that leader's result. The source return value is one of cacheHit,
// cacheMiss, or cacheCoalesced. Errors are never cached — the key is
// retried by the next leader. Oversized results are returned but not
// stored, so a pathological response cannot monopolize the LRU.
func (c *resultCache) do(ctx context.Context, key string, fn func() ([]byte, error)) (data []byte, source string, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		data = el.Value.(*cacheEntry).data
		c.mu.Unlock()
		c.met.cacheHits.Inc()
		return data, cacheHit, nil
	}
	if cl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		c.met.cacheCoalesced.Inc()
		select {
		case <-cl.done:
			return cl.data, cacheCoalesced, cl.err
		case <-ctx.Done():
			return nil, cacheCoalesced, ctx.Err()
		}
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.mu.Unlock()

	c.met.cacheMisses.Inc()
	cl.data, cl.err = fn()

	c.mu.Lock()
	delete(c.inflight, key)
	if cl.err == nil && (c.maxEntry <= 0 || len(cl.data) <= c.maxEntry) {
		c.insert(key, cl.data)
	}
	c.mu.Unlock()
	close(cl.done)
	return cl.data, cacheMiss, cl.err
}

// insert adds an entry, evicting from the LRU tail past capacity.
// Callers hold c.mu.
func (c *resultCache) insert(key string, data []byte) {
	if c.capacity <= 0 {
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, data: data})
	for c.order.Len() > c.capacity {
		tail := c.order.Back()
		c.order.Remove(tail)
		delete(c.entries, tail.Value.(*cacheEntry).key)
		c.met.cacheEvictions.Inc()
	}
}

// len reports the stored (not in-flight) entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
