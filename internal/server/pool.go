package server

import (
	"context"
	"errors"
)

// errBusy is returned by acquire when the pool's queue is at capacity;
// the HTTP layer maps it to 429 with a Retry-After hint.
var errBusy = errors.New("server: worker pool saturated")

// workPool bounds concurrent heavy computations (analysis, simulation,
// admission evaluation). Two semaphores implement two distinct limits:
//
//   - queue caps the total requests in the system (running + waiting);
//     admission is a non-blocking try so a saturated server sheds load
//     with 429 instead of stacking goroutines.
//   - slots caps the requests actually computing; once queued, a request
//     blocks here until a worker frees up or its context dies.
type workPool struct {
	slots chan struct{}
	queue chan struct{}
}

func newWorkPool(workers, queueDepth int) *workPool {
	return &workPool{
		slots: make(chan struct{}, workers),
		queue: make(chan struct{}, workers+queueDepth),
	}
}

// acquire claims a worker slot. It returns errBusy immediately when the
// queue is full, ctx.Err() if the context dies while waiting for a slot,
// and otherwise a release function that must be called exactly once.
func (p *workPool) acquire(ctx context.Context) (release func(), err error) {
	select {
	case p.queue <- struct{}{}:
	default:
		return nil, errBusy
	}
	select {
	case p.slots <- struct{}{}:
		return func() { <-p.slots; <-p.queue }, nil
	case <-ctx.Done():
		<-p.queue
		return nil, ctx.Err()
	}
}

// depth reports the requests currently admitted (running + queued).
func (p *workPool) depth() int { return len(p.queue) }
