package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"rtmdm/internal/analysis"
	"rtmdm/internal/core"
	"rtmdm/internal/exec"
	"rtmdm/internal/scenario"
	"rtmdm/internal/trace"
)

// AnalyzeRequest asks for schedulability verdicts. Policies defaults to
// every canonical policy name; each is analyzed against the scenario's
// task set (re-segmented under that policy's limits).
type AnalyzeRequest struct {
	Scenario json.RawMessage `json:"scenario"`
	Policies []string        `json:"policies,omitempty"`
}

// PolicyResult is one policy's verdict. Error is set when the scenario
// cannot even be built or tested under the policy (e.g. SRAM
// provisioning fails, or the policy has no sound offline test).
type PolicyResult struct {
	Policy      string           `json:"policy"`
	Test        string           `json:"test,omitempty"`
	Schedulable bool             `json:"schedulable"`
	WCRTNs      map[string]int64 `json:"wcrt_ns,omitempty"`
	Reason      string           `json:"reason,omitempty"`
	Error       string           `json:"error,omitempty"`
}

// AnalyzeResponse carries per-policy verdicts plus the canonical hash
// the result was computed (and cached) under.
type AnalyzeResponse struct {
	ScenarioHash string         `json:"scenario_hash"`
	Platform     string         `json:"platform"`
	Results      []PolicyResult `json:"results"`
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sc, hash, err := s.parseScenario(req.Scenario)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	policies := req.Policies
	if len(policies) == 0 {
		policies = core.PolicyNames()
	}
	for _, p := range policies {
		if _, err := core.PolicyByName(p); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	key := "analyze\x00" + hash + "\x00" + strings.Join(policies, ",")
	s.compute(w, r, key, func(ctx context.Context) ([]byte, error) {
		resp := AnalyzeResponse{ScenarioHash: hash, Platform: sc.Platform}
		for _, p := range policies {
			resp.Results = append(resp.Results, analyzeOne(ctx, sc, p))
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		return json.Marshal(resp)
	})
}

// analyzeOne runs one policy's offline test against the scenario,
// folding build and test-construction failures into the result.
func analyzeOne(ctx context.Context, sc *scenario.Scenario, policy string) PolicyResult {
	res := PolicyResult{Policy: policy}
	cand := *sc
	cand.Policy = policy
	set, plat, pol, err := cand.Build()
	if err != nil {
		res.Error = err.Error()
		return res
	}
	test, err := analysis.ForPolicyContext(ctx, pol)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	v := test(set, plat)
	res.Test = v.Test
	res.Schedulable = v.Schedulable
	res.Reason = v.Reason
	res.WCRTNs = wcrtNs(v.WCRT)
	return res
}

// SimulateRequest asks for a bounded deterministic simulation run.
// IncludeTrace embeds the Trace Event Format export in the response.
type SimulateRequest struct {
	Scenario     json.RawMessage `json:"scenario"`
	IncludeTrace bool            `json:"include_trace,omitempty"`
}

// TaskSummary condenses one task's outcomes over the horizon.
type TaskSummary struct {
	Released      int     `json:"released"`
	Completed     int     `json:"completed"`
	Misses        int     `json:"misses"`
	MissRatio     float64 `json:"miss_ratio"`
	MaxResponseNs int64   `json:"max_response_ns"`
	AvgResponseNs int64   `json:"avg_response_ns"`
	P50ResponseNs int64   `json:"p50_response_ns"`
	P95ResponseNs int64   `json:"p95_response_ns"`
	P99ResponseNs int64   `json:"p99_response_ns"`
}

// SimulateResponse summarizes a run; Trace (optional) is the Perfetto-
// compatible Trace Event Format export.
type SimulateResponse struct {
	ScenarioHash   string                 `json:"scenario_hash"`
	HorizonNs      int64                  `json:"horizon_ns"`
	Tasks          map[string]TaskSummary `json:"tasks"`
	TotalMissRatio float64                `json:"total_miss_ratio"`
	AnyMiss        bool                   `json:"any_miss"`
	CPUUtilization float64                `json:"cpu_utilization"`
	DMAUtilization float64                `json:"dma_utilization"`
	SRAMPeakBytes  int64                  `json:"sram_peak_bytes"`
	FlashBytes     int64                  `json:"flash_bytes"`
	EnergyMicroJ   float64                `json:"energy_uj"`
	FaultsInjected int64                  `json:"faults_injected,omitempty"`
	JobsAborted    int64                  `json:"jobs_aborted,omitempty"`
	DMARetries     int64                  `json:"dma_retries,omitempty"`
	Trace          json.RawMessage        `json:"trace,omitempty"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sc, hash, err := s.parseScenario(req.Scenario)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := fmt.Sprintf("simulate\x00%s\x00trace=%t", hash, req.IncludeTrace)
	s.compute(w, r, key, func(ctx context.Context) ([]byte, error) {
		return simulateScenario(ctx, sc, hash, req.IncludeTrace)
	})
}

// simulateScenario builds and runs the canonicalized scenario and
// marshals the summary. The run itself is deterministic, which is what
// licenses caching the marshaled bytes.
func simulateScenario(ctx context.Context, sc *scenario.Scenario, hash string, includeTrace bool) ([]byte, error) {
	set, plat, pol, err := sc.Build()
	if err != nil {
		return nil, err
	}
	plan, err := sc.FaultPlan()
	if err != nil {
		return nil, err
	}
	res, err := exec.RunWithFaultsContext(ctx, set, plat, pol, sc.Horizon(), plan)
	if err != nil {
		return nil, err
	}
	resp := SimulateResponse{
		ScenarioHash:   hash,
		HorizonNs:      int64(res.Horizon),
		Tasks:          make(map[string]TaskSummary, len(res.Metrics.PerTask)),
		TotalMissRatio: res.Metrics.TotalMissRatio(),
		AnyMiss:        res.Metrics.AnyMiss(),
		CPUUtilization: res.CPUUtilization(),
		DMAUtilization: res.DMAUtilization(),
		SRAMPeakBytes:  res.SRAMPeak,
		FlashBytes:     res.FlashBytes,
		EnergyMicroJ:   res.EnergyMicroJ,
		FaultsInjected: res.FaultsInjected,
		JobsAborted:    res.JobsAborted,
		DMARetries:     res.DMARetries,
	}
	for name, tm := range res.Metrics.PerTask {
		resp.Tasks[name] = TaskSummary{
			Released:      tm.Released,
			Completed:     tm.Completed,
			Misses:        tm.Misses,
			MissRatio:     tm.MissRatio(),
			MaxResponseNs: int64(tm.MaxResponse),
			AvgResponseNs: int64(tm.AvgResponse()),
			P50ResponseNs: int64(tm.Percentile(50)),
			P95ResponseNs: int64(tm.Percentile(95)),
			P99ResponseNs: int64(tm.Percentile(99)),
		}
	}
	if includeTrace {
		var buf bytes.Buffer
		if err := trace.ExportJSON(&buf, res.Trace, res.Infos); err != nil {
			return nil, err
		}
		resp.Trace = buf.Bytes()
	}
	return json.Marshal(&resp)
}

func (s *Server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	var req AdmitRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.RequestID == 0 {
		writeError(w, http.StatusBadRequest, "request_id must be a positive integer")
		return
	}
	if req.Node == "" {
		writeError(w, http.StatusBadRequest, "node must be set")
		return
	}
	if req.Task.Name == "" {
		writeError(w, http.StatusBadRequest, "task.name must be set")
		return
	}
	if req.HorizonMs > s.cfg.MaxHorizonMs {
		writeError(w, http.StatusBadRequest, fmt.Sprintf(
			"horizon %v ms exceeds the server bound %v ms", req.HorizonMs, s.cfg.MaxHorizonMs))
		return
	}
	// Admission consumes a worker slot like any other computation; the
	// decision itself happens on the node's drain goroutine.
	release, err := s.pool.acquire(r.Context())
	if err == errBusy {
		s.met.rejected.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "worker pool saturated; retry shortly")
		return
	}
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	defer release()
	resp, err := s.adm.submit(r.Context(), req)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
