package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"rtmdm/internal/analysis"
	"rtmdm/internal/cluster"
	"rtmdm/internal/scenario"
)

// This file is the shard side of live resharding (docs/CLUSTER.md):
// node-granular state transfer over GET /v1/export and POST /v1/import,
// reusing the sealed snapshot codec so every byte that moves between
// shards carries the scenario.CanonicalHash integrity chain. Both
// operations are idempotent — the gateway retries them through lossy
// transports — and release is hash-guarded so a stale or duplicated
// release can never delete state that has since diverged.

// errNodeUnknown maps to 404: the shard holds no state for the node.
var errNodeUnknown = errors.New("server: node has no admission state here")

// errHandoffConflict maps to 409: the shard holds state for the node
// that contradicts the request (different hash). The gateway treats 409
// as "resolve before retrying", not as a transient failure.
var errHandoffConflict = errors.New("server: handoff conflict")

// errNodeBusy maps to 503 + Retry-After: the node has decisions pending
// or a drain loop still live — a transient condition (the gateway
// freezes lanes before transferring, so retrying shortly succeeds).
var errNodeBusy = errors.New("server: node busy")

// handleExport serves one node's committed admission state as a sealed
// single-node snapshot. 404 for nodes this shard holds no state for —
// during a migration the gateway uses that to distinguish "nothing to
// move" from "source unreachable".
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("node")
	if name == "" {
		writeError(w, http.StatusBadRequest, "node query parameter must be set")
		return
	}
	snap, err := s.adm.exportNode(s.cfg.ShardLabel, name)
	if errors.Is(err, errNodeUnknown) {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	cluster.RecordHandoffExport()
	w.Header().Set("Content-Type", "application/json")
	snap.Encode(w)
}

// importRequest is the /v1/import wire shape. Exactly one of the two
// operations is present: a sealed single-node snapshot installs state; a
// release record deletes it after the new owner has verified its copy.
type importRequest struct {
	Release *releaseRequest `json:"release,omitempty"`
}

type releaseRequest struct {
	Node string `json:"node"`
	Hash string `json:"hash"`
}

// importResponse reports what happened. Hash echoes the installed
// state's CanonicalHash so the migration driver verifies the transfer
// end-to-end; Installed/Released are false on the idempotent no-op
// paths (state already present / already gone) so retries are safe to
// repeat blindly.
type importResponse struct {
	Node      string `json:"node"`
	Hash      string `json:"hash,omitempty"`
	Installed bool   `json:"installed,omitempty"`
	Released  bool   `json:"released,omitempty"`
}

// handleImport installs or releases one node's state. Install bodies
// are full sealed snapshots (decoded with the same all-or-nothing
// verification as boot-time restore); release bodies are
// {"release":{"node":...,"hash":...}}.
func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var probe importRequest
	if jerr := json.Unmarshal(body, &probe); jerr == nil && probe.Release != nil {
		s.handleRelease(w, probe.Release)
		return
	}

	snap, err := cluster.DecodeSnapshot(bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	installed, resp, err := s.adm.importNode(snap)
	if err != nil {
		writeHandoffError(w, err)
		return
	}
	cluster.RecordHandoffImport()
	writeJSON(w, http.StatusOK, importResponse{Node: resp.Node, Hash: resp.Hash, Installed: installed})
}

func (s *Server) handleRelease(w http.ResponseWriter, rel *releaseRequest) {
	if rel.Node == "" || rel.Hash == "" {
		writeError(w, http.StatusBadRequest, "release needs node and hash")
		return
	}
	released, err := s.adm.releaseNode(rel.Node, rel.Hash)
	if err != nil {
		writeHandoffError(w, err)
		return
	}
	cluster.RecordHandoffRelease()
	writeJSON(w, http.StatusOK, importResponse{Node: rel.Node, Hash: rel.Hash, Released: released})
}

// writeHandoffError maps the handoff sentinels onto their statuses:
// busy → 503 (transient, retry), conflict → 409 (permanent, resolve),
// anything else → 400.
func writeHandoffError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errNodeBusy):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, errHandoffConflict):
		cluster.RecordHandoffConflict()
		writeError(w, http.StatusConflict, err.Error())
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

// stateHash computes the node's committed-scenario CanonicalHash — the
// same value a NodeState record for this node would carry. Callers hold
// n.mu.
func (n *node) stateHash() (string, error) {
	return scenario.CanonicalHash(&scenario.Scenario{
		Platform:  n.platform,
		Policy:    n.policy,
		HorizonMs: n.horizonMs,
		Tasks:     append([]scenario.TaskSpec(nil), n.committed...),
	})
}

// exportNode seals one node's committed state into a single-node
// snapshot. Unbound nodes (created by requests that never decided)
// export as unknown — they carry no state worth moving.
func (a *admitter) exportNode(label, name string) (*cluster.Snapshot, error) {
	a.mu.Lock()
	n, ok := a.nodes[name]
	a.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", errNodeUnknown, name)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.bound {
		return nil, fmt.Errorf("%w: %q", errNodeUnknown, name)
	}
	return cluster.NewSnapshot(label, []cluster.NodeState{{
		Node:      name,
		Platform:  n.platform,
		Policy:    n.policy,
		HorizonMs: n.horizonMs,
		Tasks:     append([]scenario.TaskSpec(nil), n.committed...),
	}})
}

// importNode installs a verified single-node snapshot, warming the
// node's incremental analyzer exactly like boot-time restore. Idempotent
// by hash: importing state the shard already holds succeeds without
// touching it (installed=false); importing over *different* state is a
// conflict; importing over a node with decisions in flight is a
// conflict (the migration driver drains lanes before transferring, so a
// busy lane means the request is stale or misrouted).
func (a *admitter) importNode(snap *cluster.Snapshot) (installed bool, ns *cluster.NodeState, err error) {
	if len(snap.Nodes) != 1 {
		return false, nil, fmt.Errorf("server: import wants exactly one node, got %d", len(snap.Nodes))
	}
	ns = &snap.Nodes[0]
	fresh := &node{
		platform:  ns.Platform,
		policy:    ns.Policy,
		horizonMs: ns.HorizonMs,
		bound:     true,
		committed: append([]scenario.TaskSpec(nil), ns.Tasks...),
	}
	if len(ns.Tasks) > 0 && a.eval == nil {
		sc := ns.Scenario().Canonicalize()
		fresh.inc = analysis.NewIncrementalAnalyzer()
		v, _, verr := fresh.inc.Evaluate(a.base, sc)
		if verr != nil {
			return false, nil, fmt.Errorf("server: import node %q: %w", ns.Node, verr)
		}
		if !v.Schedulable {
			return false, nil, fmt.Errorf("server: import node %q: committed set not schedulable here (%s: %s)",
				ns.Node, v.Test, v.Reason)
		}
		fresh.inc.Commit(sc)
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	if existing, ok := a.nodes[ns.Node]; ok {
		existing.mu.Lock()
		defer existing.mu.Unlock()
		if len(existing.pending) > 0 || existing.draining {
			return false, nil, fmt.Errorf("%w: node %q has decisions in flight", errNodeBusy, ns.Node)
		}
		if existing.bound || len(existing.committed) > 0 {
			curHash, herr := existing.stateHash()
			if herr != nil {
				return false, nil, herr
			}
			if curHash == ns.Hash {
				return false, ns, nil
			}
			return false, nil, fmt.Errorf("%w: node %q holds different state (have %.12s…, import %.12s…)",
				errHandoffConflict, ns.Node, curHash, ns.Hash)
		}
		// A clean placeholder (request created the entry but never bound
		// it) is safe to replace.
		existing.gone = true
	}
	a.nodes[ns.Node] = fresh
	return true, ns, nil
}

// releaseNode deletes a node's state after handoff, guarded by the hash
// the releasing party verified: a mismatch means the state here has
// changed since the export and must not be deleted. Releasing an absent
// node is the idempotent no-op (released=false) so a retried release is
// safe.
func (a *admitter) releaseNode(name, hash string) (released bool, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	n, ok := a.nodes[name]
	if !ok {
		return false, nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.pending) > 0 || n.draining {
		return false, fmt.Errorf("%w: node %q has decisions in flight", errNodeBusy, name)
	}
	if !n.bound && len(n.committed) == 0 {
		// An unbound placeholder carries no state; drop it.
		n.gone = true
		delete(a.nodes, name)
		return false, nil
	}
	h, err := n.stateHash()
	if err != nil {
		return false, err
	}
	if h != hash {
		return false, fmt.Errorf("%w: node %q hash mismatch (have %.12s…, release says %.12s…)",
			errHandoffConflict, name, h, hash)
	}
	n.gone = true
	delete(a.nodes, name)
	return true, nil
}
