package server

import (
	"fmt"
	"io"
	"sort"

	"rtmdm/internal/analysis"
	"rtmdm/internal/cluster"
	"rtmdm/internal/scenario"
)

// ExportState captures every node's committed admission state as a
// sealed cluster.Snapshot (per-node CanonicalHash records plus a
// whole-snapshot checksum). label names the shard in the snapshot.
// Nodes still deciding a batch are captured after their in-flight
// decisions only if those have committed — callers that need a quiescent
// snapshot (shutdown) export after the admitter drained.
func (s *Server) ExportState(label string) (*cluster.Snapshot, error) {
	return s.adm.export(label)
}

// WriteSnapshot exports the admission state and encodes it onto w.
func (s *Server) WriteSnapshot(label string, w io.Writer) error {
	snap, err := s.ExportState(label)
	if err != nil {
		return err
	}
	return snap.Encode(w)
}

// RestoreState installs a verified snapshot into an empty admitter and
// warms each restored node: the committed scenario is re-evaluated once
// through the node's incremental analyzer and committed, so the first
// live admission after a restart already runs against cached terms and
// (where sound) warm fixpoint bounds. Restoring onto a node that
// already has state is an error — restore is a boot-time operation.
func (s *Server) RestoreState(snap *cluster.Snapshot) error {
	return s.adm.restore(snap)
}

// RestoreSnapshot decodes, verifies, and restores a snapshot from r.
// Corrupt or truncated snapshots are rejected before any node state
// changes. Returns the restored node count.
func (s *Server) RestoreSnapshot(r io.Reader) (int, error) {
	snap, err := cluster.DecodeSnapshot(r)
	if err != nil {
		return 0, err
	}
	if err := s.RestoreState(snap); err != nil {
		return 0, err
	}
	return len(snap.Nodes), nil
}

// export snapshots the admitter's nodes. Unbound empty nodes (created by
// a request that never decided) are skipped; bound nodes are captured
// even when their committed set is empty — the binding is state.
func (a *admitter) export(label string) (*cluster.Snapshot, error) {
	a.mu.Lock()
	names := make([]string, 0, len(a.nodes))
	nodes := make(map[string]*node, len(a.nodes))
	for name, n := range a.nodes {
		names = append(names, name)
		nodes[name] = n
	}
	a.mu.Unlock()
	sort.Strings(names)

	var states []cluster.NodeState
	for _, name := range names {
		n := nodes[name]
		n.mu.Lock()
		if n.bound {
			states = append(states, cluster.NodeState{
				Node:      name,
				Platform:  n.platform,
				Policy:    n.policy,
				HorizonMs: n.horizonMs,
				Tasks:     append([]scenario.TaskSpec(nil), n.committed...),
			})
		}
		n.mu.Unlock()
	}
	return cluster.NewSnapshot(label, states)
}

// restore installs snapshot state into the admitter. Each restored node
// gets its binding, its committed set, and a warmed incremental
// analyzer (one cold evaluation of the committed scenario, committed so
// later admissions reuse its terms and bounds). All-or-nothing per
// snapshot: the first failing node aborts with nothing partially
// installed.
func (a *admitter) restore(snap *cluster.Snapshot) error {
	restored := make(map[string]*node, len(snap.Nodes))
	for i := range snap.Nodes {
		ns := &snap.Nodes[i]
		n := &node{
			platform:  ns.Platform,
			policy:    ns.Policy,
			horizonMs: ns.HorizonMs,
			bound:     true,
			committed: append([]scenario.TaskSpec(nil), ns.Tasks...),
		}
		if len(ns.Tasks) > 0 && a.eval == nil {
			sc := ns.Scenario().Canonicalize()
			n.inc = analysis.NewIncrementalAnalyzer()
			v, _, err := n.inc.Evaluate(a.base, sc)
			if err != nil {
				return fmt.Errorf("server: restore node %q: %w", ns.Node, err)
			}
			if !v.Schedulable {
				// The set was admitted incrementally, so a full re-analysis
				// must accept it; a rejection means the snapshot does not
				// describe a state this build's analysis can certify.
				return fmt.Errorf("server: restore node %q: committed set no longer schedulable (%s: %s)",
					ns.Node, v.Test, v.Reason)
			}
			n.inc.Commit(sc)
		}
		restored[ns.Node] = n
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	for name := range restored {
		if existing, ok := a.nodes[name]; ok {
			existing.mu.Lock()
			dirty := existing.bound || len(existing.committed) > 0
			existing.mu.Unlock()
			if dirty {
				return fmt.Errorf("server: restore: node %q already has admission state", name)
			}
		}
	}
	for name, n := range restored {
		a.nodes[name] = n
	}
	return nil
}
