package server

import "rtmdm/internal/metrics"

// Metrics holds the server's instrument handles. All fields are nil-safe
// (a nil registry yields nil instruments whose methods no-op), so a
// server built without a registry pays only a nil check per event.
type Metrics struct {
	requests   *metrics.Counter
	inflight   *metrics.Gauge
	queueDepth *metrics.Gauge
	rejected   *metrics.Counter
	timeouts   *metrics.Counter
	panics     *metrics.Counter
	latency    *metrics.Histogram

	cacheHits      *metrics.Counter
	cacheMisses    *metrics.Counter
	cacheCoalesced *metrics.Counter
	cacheEvictions *metrics.Counter

	admitCommitted *metrics.Counter
	admitRejected  *metrics.Counter
	admitBatches   *metrics.Counter
	admitWarm      *metrics.Counter
}

// latencyBounds buckets request latency from 100µs to 10s (values in
// wall nanoseconds, exported under the _ns suffix convention).
var latencyBounds = []int64{
	100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000, 10_000_000_000,
}

// RegisterMetrics registers the server metric family on r and returns
// the handles. A nil registry yields all-nil handles, whose update
// methods no-op. Every name below must appear in the
// docs/OBSERVABILITY.md catalogue (enforced by the metricname analyzer
// and docsync_test.go).
func RegisterMetrics(r *metrics.Registry) *Metrics {
	if r == nil {
		return &Metrics{}
	}
	return &Metrics{
		requests:   r.Counter("server.requests_total", "requests", "HTTP requests received across all routes"),
		inflight:   r.Gauge("server.requests_inflight", "requests", "HTTP requests currently being served"),
		queueDepth: r.Gauge("server.queue_depth", "requests", "compute requests admitted to the worker pool (running + queued)"),
		rejected:   r.Counter("server.rejected_busy", "requests", "compute requests refused with 429 because the pool queue was full"),
		timeouts:   r.Counter("server.request_timeouts", "requests", "compute requests aborted by the per-request deadline"),
		panics:     r.Counter("server.panics_recovered", "panics", "handler panics converted to 500 responses"),
		latency:    r.Histogram("server.request_latency_ns", "ns", "wall latency per HTTP request", latencyBounds),

		cacheHits:      r.Counter("server.cache_hits", "requests", "compute requests served from the result cache"),
		cacheMisses:    r.Counter("server.cache_misses", "requests", "compute requests that ran as singleflight leaders"),
		cacheCoalesced: r.Counter("server.cache_coalesced", "requests", "compute requests coalesced onto an in-flight leader"),
		cacheEvictions: r.Counter("server.cache_evictions", "entries", "result-cache entries evicted by LRU pressure"),

		admitCommitted: r.Counter("server.admit_committed", "tasks", "admission requests that committed a task to a node"),
		admitRejected:  r.Counter("server.admit_rejected", "tasks", "admission requests rejected by the schedulability test"),
		admitBatches:   r.Counter("server.admit_batches", "batches", "admission batches drained (each processes its requests in request_id order)"),
		admitWarm:      r.Counter("server.admit_warm", "requests", "admission evaluations that warm-started at least one RTA fixpoint from the node's committed bounds"),
	}
}
