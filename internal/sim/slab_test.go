package sim

import (
	"testing"
)

// Regression for the Cancel/fire asymmetry: cancelling an event that already
// fired must be a no-op, and in particular must NOT make Cancelled() report
// true afterwards.
func TestCancelAfterFireIsNoOp(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	e.RunAll(0)
	if !fired {
		t.Fatal("event did not fire")
	}
	e.Cancel(ev)
	if ev.Cancelled() {
		t.Fatal("Cancelled() = true for an event that fired normally")
	}
	if ev.Pending() {
		t.Fatal("Pending() = true after fire")
	}
}

func TestEventCancelMethod(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	ev.Cancel()
	e.RunAll(0)
	if fired {
		t.Fatal("event fired after Event.Cancel")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Event.Cancel")
	}
	// Zero handle: must not panic.
	var zero Event
	zero.Cancel()
	if zero.Cancelled() || zero.Pending() {
		t.Fatal("zero Event reports Cancelled or Pending")
	}
}

// A handle must stay inert after its slot is reused by a later event:
// cancelling the stale handle must not cancel the new occupant.
func TestStaleHandleCannotCancelReusedSlot(t *testing.T) {
	e := NewEngine()
	old := e.Schedule(5, func() {})
	e.RunAll(0) // fires; slot returns to the free list

	fired := false
	fresh := e.Schedule(e.Now()+5, func() { fired = true })
	old.Cancel() // stale: same slot, older generation
	if old.Cancelled() {
		t.Fatal("stale handle reports Cancelled after no-op Cancel")
	}
	e.RunAll(0)
	if !fired {
		t.Fatal("stale handle cancelled the slot's new occupant")
	}
	_ = fresh
}

func TestResetClearsStateAndInvalidatesHandles(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(10, func() { fired++ })
	stale := e.Schedule(50, func() { fired++ })
	e.Run(20)
	if e.Now() != 20 || e.Steps() != 1 || e.Pending() != 1 {
		t.Fatalf("pre-reset state: now=%v steps=%d pending=%d", e.Now(), e.Steps(), e.Pending())
	}

	e.Reset()
	if e.Now() != 0 || e.Steps() != 0 || e.Pending() != 0 {
		t.Fatalf("post-reset state: now=%v steps=%d pending=%d", e.Now(), e.Steps(), e.Pending())
	}
	if stale.Pending() {
		t.Fatal("handle from before Reset still Pending")
	}
	stale.Cancel() // must be a no-op, not a panic or a cancel of future events

	// The engine must behave like a fresh one.
	order := []int{}
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.RunAll(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("post-reset order %v", order)
	}
	if fired != 1 {
		t.Fatalf("pre-reset pending event leaked across Reset: fired=%d", fired)
	}
}

// An event callback may immediately schedule again; if it lands in the slot
// just vacated, the fired handle must still be inert.
func TestRescheduleIntoFreedSlotDuringFire(t *testing.T) {
	e := NewEngine()
	var first Event
	nested := false
	first = e.Schedule(10, func() {
		e.After(5, func() { nested = true })
		// The nested event likely reuses first's slot; cancelling the
		// already-fired handle must not touch it.
		first.Cancel()
	})
	e.RunAll(0)
	if !nested {
		t.Fatal("nested event was cancelled through a fired handle")
	}
	if first.Cancelled() {
		t.Fatal("fired handle reports Cancelled")
	}
}

// Interleaved schedule/cancel against a mirror map exercises slab reuse,
// heap removal from interior positions, and generation churn.
func TestSlabChurnMatchesReference(t *testing.T) {
	e := NewEngine()
	var fired []int
	pending := map[int]Event{}
	next := 0
	// LCG keeps the test deterministic without rand.
	state := uint64(12345)
	rnd := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % n
	}
	expect := map[int]bool{}
	for round := 0; round < 2000; round++ {
		if rnd(3) != 0 || len(pending) == 0 {
			id := next
			next++
			at := e.Now() + Time(rnd(50)+1)
			pending[id] = e.Schedule(at, func() { fired = append(fired, id) })
			expect[id] = true
		} else {
			// Cancel a random pending event.
			for id, ev := range pending {
				e.Cancel(ev)
				if !ev.Cancelled() {
					t.Fatalf("event %d not Cancelled after Cancel", id)
				}
				delete(pending, id)
				delete(expect, id)
				break
			}
		}
		if rnd(4) == 0 {
			e.Run(e.Now() + Time(rnd(20)))
			for _, id := range fired {
				if !expect[id] {
					t.Fatalf("cancelled event %d fired", id)
				}
				delete(expect, id)
				delete(pending, id)
			}
			fired = fired[:0]
		}
	}
	e.RunAll(0)
	for _, id := range fired {
		if !expect[id] {
			t.Fatalf("cancelled event %d fired in drain", id)
		}
		delete(expect, id)
	}
	if len(expect) != 0 {
		t.Fatalf("%d scheduled events never fired", len(expect))
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain", e.Pending())
	}
}

// The kernel hot path — schedule, fire, cancel, re-heapify — must not
// allocate once the slab and heap have grown to their working size.
func TestKernelSteadyStateZeroAllocs(t *testing.T) {
	e := NewEngine()
	var sink int
	fn := func() { sink++ }
	// Warm up slab + heap capacity.
	for i := 0; i < 256; i++ {
		e.Schedule(e.Now()+Time(i%17+1), fn)
	}
	e.RunAll(0)

	allocs := testing.AllocsPerRun(100, func() {
		base := e.Now()
		var evs [64]Event
		for i := 0; i < 64; i++ {
			evs[i] = e.Schedule(base+Time(i%13+1), fn)
		}
		for i := 0; i < 64; i += 3 {
			e.Cancel(evs[i])
		}
		e.RunAll(0)
	})
	if allocs != 0 {
		t.Fatalf("steady-state kernel allocs/op = %v, want 0", allocs)
	}
	_ = sink
}

// Reset must retain capacity: a reset engine re-running the same load stays
// allocation-free.
func TestResetRetainsCapacityZeroAllocs(t *testing.T) {
	e := NewEngine()
	var sink int
	fn := func() { sink++ }
	load := func() {
		for i := 0; i < 128; i++ {
			e.Schedule(e.Now()+Time(i%11+1), fn)
		}
		e.RunAll(0)
	}
	load() // warm-up growth
	allocs := testing.AllocsPerRun(50, func() {
		e.Reset()
		load()
	})
	if allocs != 0 {
		t.Fatalf("reset+reload allocs/op = %v, want 0", allocs)
	}
}
