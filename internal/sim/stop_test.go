package sim

import "testing"

// TestStopHookCutsRunShort verifies the Run loop polls the stop hook and
// returns early without advancing the clock to the horizon.
func TestStopHookCutsRunShort(t *testing.T) {
	e := NewEngine()
	fired := 0
	var arm func(at Time)
	arm = func(at Time) {
		e.Schedule(at, func() {
			fired++
			arm(at + Millisecond)
		})
	}
	arm(0)
	e.SetStop(func() bool { return fired >= 3 })
	e.Run(Second)
	// The poll is amortized (every stopPollInterval events), so the run may
	// overshoot the trip point by up to one interval, but must stop far
	// short of the ~1000 events a full run would fire.
	if fired < 3 || fired > 3+stopPollInterval {
		t.Fatalf("fired %d events; want stop near 3", fired)
	}
	if e.Now() >= Second {
		t.Fatalf("clock advanced to horizon %v despite stop", e.Now())
	}
}

// TestStopHookClearedByReset pins that pooled engines never carry a stale
// stop hook into their next run.
func TestStopHookClearedByReset(t *testing.T) {
	e := NewEngine()
	e.SetStop(func() bool { return true })
	e.Reset()
	ran := false
	e.Schedule(0, func() { ran = true })
	e.Run(Second)
	if !ran {
		t.Fatal("event did not fire after Reset cleared the stop hook")
	}
}

// TestNoStopHookRunsToCompletion guards the nominal path: without a hook
// the run is untouched.
func TestNoStopHookRunsToCompletion(t *testing.T) {
	e := NewEngine()
	n := 0
	for i := 0; i < 10; i++ {
		at := Time(i) * Millisecond
		e.Schedule(at, func() { n++ })
	}
	e.Run(Second)
	if n != 10 {
		t.Fatalf("fired %d of 10 events", n)
	}
	if e.Now() != Second {
		t.Fatalf("clock at %v; want horizon", e.Now())
	}
}
