// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel operates in virtual time, expressed in nanoseconds since the
// start of the simulation. Events scheduled for the same instant fire in the
// order they were scheduled (FIFO tie-breaking by sequence number), which
// makes every run bit-for-bit reproducible regardless of host load or Go
// runtime behaviour — the property that lets a garbage-collected language
// model a hard-real-time MCU faithfully.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a virtual-time instant in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = Time

// Common duration units, mirroring time.Duration but in virtual time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// MaxTime is the largest representable virtual instant.
const MaxTime Time = math.MaxInt64

// String formats a virtual time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%s", (-t).String())
	case t >= Second:
		return fmt.Sprintf("%.6gs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.6gus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Event is a scheduled callback. It is returned by Engine.Schedule so the
// caller can cancel it before it fires.
type Event struct {
	at        Time
	seq       uint64
	index     int // heap index, -1 once popped
	cancelled bool
	fn        func()
}

// Time reports the instant the event is (or was) scheduled to fire.
func (e *Event) Time() Time { return e.at }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulation engine. The zero value is not ready
// for use; construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	running bool
	steps   uint64
}

// NewEngine returns an engine whose clock reads zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of events still queued (including cancelled
// events that have not yet been discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule registers fn to run at absolute virtual time at. Scheduling in
// the past panics: it would silently corrupt causality.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule nil func")
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After registers fn to run d nanoseconds from now.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.Schedule(e.now+d, fn)
}

// Cancel marks ev so it will not fire. Cancelling an already-fired or
// already-cancelled event is a harmless no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled {
		return
	}
	ev.cancelled = true
	ev.fn = nil
	if ev.index >= 0 {
		heap.Remove(&e.queue, ev.index)
		ev.index = -1
	}
}

// Step executes the next event, advancing the clock to its timestamp. It
// returns false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		e.steps++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue empties or the clock would pass
// horizon. Events at exactly horizon still fire. It returns the number of
// events executed.
func (e *Engine) Run(horizon Time) uint64 {
	if e.running {
		panic("sim: Run re-entered")
	}
	e.running = true
	defer func() { e.running = false }()
	var n uint64
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.cancelled {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > horizon {
			break
		}
		if !e.Step() {
			break
		}
		n++
	}
	if e.now < horizon && horizon < MaxTime {
		e.now = horizon
	}
	return n
}

// RunAll executes events until none remain. Useful for simulations that
// naturally quiesce. Panics if more than limit events execute, guarding
// against accidental event storms; pass 0 for the default of 1e9.
func (e *Engine) RunAll(limit uint64) uint64 {
	if limit == 0 {
		limit = 1_000_000_000
	}
	var n uint64
	for e.Step() {
		n++
		if n > limit {
			panic("sim: RunAll exceeded event limit")
		}
	}
	return n
}
