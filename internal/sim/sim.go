// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel operates in virtual time, expressed in nanoseconds since the
// start of the simulation. Events scheduled for the same instant fire in the
// order they were scheduled (FIFO tie-breaking by sequence number), which
// makes every run bit-for-bit reproducible regardless of host load or Go
// runtime behaviour — the property that lets a garbage-collected language
// model a hard-real-time MCU faithfully.
//
// # Allocation model
//
// The kernel is allocation-free on its hot path. Events live in a per-engine
// slab indexed by a free list; Schedule returns a small value handle (no
// boxing), and the pending queue is an inlined 4-ary min-heap of
// (time, seq, slot) keys. Handles are generation-tagged: cancelling a handle
// whose slot has been reused by a later event is a safe no-op, as is
// cancelling an event that already fired. Engine.Reset lets sweep-scale
// callers reuse one engine (and its slab/heap capacity) across thousands of
// simulated task sets instead of allocating a fresh queue per run.
package sim

import (
	"fmt"
	"math"

	"rtmdm/internal/metrics"
)

// Time is a virtual-time instant in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = Time

// Common duration units, mirroring time.Duration but in virtual time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// MaxTime is the largest representable virtual instant.
const MaxTime Time = math.MaxInt64

// String formats a virtual time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t == math.MinInt64:
		// Negation overflows; format directly rather than recurse forever.
		return fmt.Sprintf("%.6gs", t.Seconds())
	case t < 0:
		return fmt.Sprintf("-%s", (-t).String())
	case t >= Second:
		return fmt.Sprintf("%.6gs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.6gus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Event is a generation-tagged handle to a scheduled callback, returned by
// Engine.Schedule so the caller can cancel it before it fires. It is a small
// value (no allocation); the zero Event is a valid "no event" handle whose
// Cancel is a no-op. Handles stay safe to use after the event fires, after
// cancellation, and after the engine reuses the underlying slot for a later
// event: operations on a stale handle are documented no-ops.
type Event struct {
	eng  *Engine
	slot int32
	gen  uint32
	at   Time
}

// Time reports the instant the event is (or was) scheduled to fire. It is
// zero for the zero Event.
func (ev Event) Time() Time { return ev.at }

// Cancelled reports whether this handle's event was cancelled before it
// fired. An event that fired normally — even if Cancel was called on it
// afterwards — reports false.
func (ev Event) Cancelled() bool {
	if ev.eng == nil {
		return false
	}
	return ev.eng.slots[ev.slot].cancelledGen == ev.gen
}

// Pending reports whether the event is still queued (scheduled, not yet
// fired, not cancelled).
func (ev Event) Pending() bool {
	if ev.eng == nil {
		return false
	}
	s := &ev.eng.slots[ev.slot]
	return s.gen == ev.gen && s.heapIdx >= 0
}

// Cancel marks the event so it will not fire. Cancelling the zero Event, an
// already-fired event, an already-cancelled event, or a handle whose slot
// was reclaimed (by Engine.Reset or slot reuse) is a documented no-op.
func (ev Event) Cancel() {
	if ev.eng != nil {
		ev.eng.Cancel(ev)
	}
}

// eventSlot is one slab cell. gen increments every time the slot is handed
// to a new occupant (and once more on Reset), so stale handles can never
// touch a later event. cancelledGen records the generation whose occupant
// was cancelled: generations are unique per slot, making Event.Cancelled
// exact for the whole life of the engine.
type eventSlot struct {
	fn           func()
	seq          uint64
	gen          uint32
	cancelledGen uint32
	heapIdx      int32 // index into Engine.heap, -1 when not queued
}

// heapEntry carries the ordering key inline so sift operations touch one
// contiguous array instead of chasing slab pointers.
type heapEntry struct {
	at   Time
	seq  uint64
	slot int32
}

// Instruments is the kernel's optional metrics sink. Fields may be nil
// individually (nil metrics discard updates); a nil *Instruments disables
// instrumentation entirely, leaving the hot path with one predictable
// branch per operation and zero allocation — the default.
type Instruments struct {
	// Scheduled counts events entering the queue (Schedule/After).
	Scheduled *metrics.Counter
	// Fired counts events whose callback executed.
	Fired *metrics.Counter
	// Cancelled counts events removed before firing.
	Cancelled *metrics.Counter
	// SlabHighWater tracks the peak event-slab size (slots), i.e. the
	// maximum number of simultaneously pending events ever reached.
	SlabHighWater *metrics.Gauge
}

// Engine is a discrete-event simulation engine. The zero value is not ready
// for use; construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	steps   uint64
	running bool
	slots   []eventSlot
	free    []int32
	heap    []heapEntry
	ins     *Instruments
	stop    func() bool
}

// stopPollInterval is how many fired events Run executes between polls of
// the stop hook. Polling is amortized so a nominal (hook-less or
// never-stopped) run executes the exact same event sequence as an
// unhooked one — the hook can only cut a run short, never reorder it.
const stopPollInterval = 256

// SetStop installs a cancellation hook polled every stopPollInterval
// events during Run; when it returns true, Run returns early with the
// clock at the last fired event. SetStop(nil) removes the hook, as does
// Reset — a pooled engine never carries a stale hook into its next run.
// The hook must be cheap and allocation-free (e.g. a context.Err check).
func (e *Engine) SetStop(fn func() bool) { e.stop = fn }

// Stopped reports whether the stop hook is installed and currently firing.
//
//rtmdm:hotpath
func (e *Engine) Stopped() bool { return e.stop != nil && e.stop() }

// SetInstruments attaches (or, with nil, detaches) a metrics sink. The
// sink survives Reset, so a pooled engine keeps reporting into the same
// registry across runs; callers that recycle engines across instrumentation
// regimes must call SetInstruments per run.
func (e *Engine) SetInstruments(ins *Instruments) { e.ins = ins }

// NewEngine returns an engine whose clock reads zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Reset returns the engine to its initial state — clock at zero, no pending
// events, step counter cleared — while retaining the slab and queue capacity
// grown by earlier runs. Every outstanding Event handle is invalidated
// (their Cancel becomes a no-op and Pending reports false). Reset makes one
// engine reusable across thousands of simulated task sets without
// re-allocating its queue.
func (e *Engine) Reset() {
	e.now, e.seq, e.steps = 0, 0, 0
	e.running = false
	e.stop = nil
	e.heap = e.heap[:0]
	e.free = e.free[:0]
	for i := range e.slots {
		s := &e.slots[i]
		s.fn = nil
		s.heapIdx = -1
		s.gen++ // invalidate outstanding handles
		e.free = append(e.free, int32(i))
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of events still queued.
func (e *Engine) Pending() int { return len(e.heap) }

// Schedule registers fn to run at absolute virtual time at. Scheduling in
// the past panics: it would silently corrupt causality.
//
//rtmdm:hotpath
func (e *Engine) Schedule(at Time, fn func()) Event {
	if at < e.now {
		//lint:allow hotpathalloc -- cold panic path; allocation is irrelevant mid-crash
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule nil func")
	}
	var si int32
	if n := len(e.free); n > 0 {
		si = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slots = append(e.slots, eventSlot{heapIdx: -1})
		si = int32(len(e.slots) - 1)
	}
	s := &e.slots[si]
	s.gen++ // new occupant: first occupant of a fresh slot gets gen 1
	s.fn = fn
	s.seq = e.seq
	e.heap = append(e.heap, heapEntry{at: at, seq: e.seq, slot: si})
	e.seq++
	e.siftUp(len(e.heap) - 1)
	if e.ins != nil {
		e.ins.Scheduled.Add(1)
		e.ins.SlabHighWater.SetMax(int64(len(e.slots)))
	}
	return Event{eng: e, slot: si, gen: s.gen, at: at}
}

// After registers fn to run d nanoseconds from now.
//
//rtmdm:hotpath
func (e *Engine) After(d Duration, fn func()) Event {
	if d < 0 {
		//lint:allow hotpathalloc -- cold panic path; allocation is irrelevant mid-crash
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.Schedule(e.now+d, fn)
}

// Cancel marks ev so it will not fire. Cancelling the zero Event, an
// already-fired or already-cancelled event, a handle invalidated by Reset,
// or a handle from a different engine is a harmless, documented no-op —
// generation tags guarantee a stale handle can never cancel a later event
// that happens to reuse the same slot.
//
//rtmdm:hotpath
func (e *Engine) Cancel(ev Event) {
	if ev.eng != e || ev.eng == nil {
		return
	}
	s := &e.slots[ev.slot]
	if s.gen != ev.gen || s.heapIdx < 0 {
		return // fired, cancelled, reused, or reset since
	}
	s.cancelledGen = ev.gen
	e.heapRemove(int(s.heapIdx))
	s.heapIdx = -1
	s.fn = nil
	e.free = append(e.free, ev.slot)
	if e.ins != nil {
		e.ins.Cancelled.Add(1)
	}
}

// Step executes the next event, advancing the clock to its timestamp. It
// returns false when the queue is empty.
//
//rtmdm:hotpath
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	h := e.heap[0]
	e.heapRemove(0)
	s := &e.slots[h.slot]
	s.heapIdx = -1
	fn := s.fn
	s.fn = nil
	// The slot is recycled before fn runs; the generation tag keeps the
	// fired handle inert even if fn immediately reuses the slot.
	e.free = append(e.free, h.slot)
	e.now = h.at
	e.steps++
	if e.ins != nil {
		e.ins.Fired.Add(1)
	}
	fn()
	return true
}

// Run executes events until the queue empties or the clock would pass
// horizon. Events at exactly horizon still fire. It returns the number of
// events executed.
func (e *Engine) Run(horizon Time) uint64 {
	if e.running {
		panic("sim: Run re-entered")
	}
	e.running = true
	defer func() { e.running = false }()
	var n uint64
	for len(e.heap) > 0 {
		if e.heap[0].at > horizon {
			break
		}
		if n%stopPollInterval == 0 && e.Stopped() {
			return n
		}
		if !e.Step() {
			break
		}
		n++
	}
	if e.now < horizon && horizon < MaxTime {
		e.now = horizon
	}
	return n
}

// RunAll executes events until none remain. Useful for simulations that
// naturally quiesce. Panics if more than limit events execute, guarding
// against accidental event storms; pass 0 for the default of 1e9.
func (e *Engine) RunAll(limit uint64) uint64 {
	if limit == 0 {
		limit = 1_000_000_000
	}
	var n uint64
	for e.Step() {
		n++
		if n > limit {
			panic("sim: RunAll exceeded event limit")
		}
	}
	return n
}

// less orders heap entries by (time, schedule sequence): FIFO at one instant.
//
//rtmdm:hotpath
func less(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// The pending queue is a 4-ary min-heap: shallower than a binary heap (fewer
// cache lines per reheapify) and branch-cheap because the four children are
// adjacent. Parent of i is (i-1)/4; children are 4i+1..4i+4.

//rtmdm:hotpath
func (e *Engine) siftUp(i int) {
	h := e.heap
	ent := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !less(ent, h[p]) {
			break
		}
		h[i] = h[p]
		e.slots[h[i].slot].heapIdx = int32(i)
		i = p
	}
	h[i] = ent
	e.slots[ent.slot].heapIdx = int32(i)
}

//rtmdm:hotpath
func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	ent := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for k := c + 1; k < end; k++ {
			if less(h[k], h[best]) {
				best = k
			}
		}
		if !less(h[best], ent) {
			break
		}
		h[i] = h[best]
		e.slots[h[i].slot].heapIdx = int32(i)
		i = best
	}
	h[i] = ent
	e.slots[ent.slot].heapIdx = int32(i)
}

// heapRemove deletes the entry at heap index i, preserving the heap
// invariant and the slab's back-pointers.
//
//rtmdm:hotpath
func (e *Engine) heapRemove(i int) {
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap[n] = heapEntry{}
	e.heap = e.heap[:n]
	if i == n {
		return
	}
	e.heap[i] = last
	e.slots[last.slot].heapIdx = int32(i)
	// The moved entry may violate the invariant in either direction.
	if i > 0 && less(last, e.heap[(i-1)>>2]) {
		e.siftUp(i)
	} else {
		e.siftDown(i)
	}
}
