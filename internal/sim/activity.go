package sim

import "fmt"

// Activity models a piece of work that progresses through virtual time at a
// rate that may change while it runs. Work is measured in nanoseconds at
// unit rate: an activity with 1000 work-ns running at rate 1/2 completes in
// 2000 ns of virtual time.
//
// Rates are exact rationals (num/den) so repeated rate changes cannot
// accumulate floating-point drift. An activity at rate 0 is stalled and
// holds its remaining work indefinitely.
type Activity struct {
	eng       *Engine
	remaining int64 // work-ns still to do
	num, den  int64 // current rate
	started   Time  // when the current leg began
	event     Event // zero when no completion is armed
	onDone    func()
	running   bool
	finished  bool
}

// NewActivity creates an activity with the given total work (in work-ns)
// that will call onDone when the work completes. The activity does not
// progress until Start is called.
func NewActivity(eng *Engine, work int64, onDone func()) *Activity {
	if work < 0 {
		panic(fmt.Sprintf("sim: negative activity work %d", work))
	}
	return &Activity{eng: eng, remaining: work, num: 1, den: 1, onDone: onDone}
}

// Remaining returns the work-ns left, folding in progress on the current leg.
func (a *Activity) Remaining() int64 {
	if !a.running {
		return a.remaining
	}
	return a.remaining - a.progressed()
}

// Finished reports whether the activity has completed.
func (a *Activity) Finished() bool { return a.finished }

// Running reports whether the activity is currently progressing (started
// and neither paused nor finished).
func (a *Activity) Running() bool { return a.running }

func (a *Activity) progressed() int64 {
	elapsed := int64(a.eng.Now() - a.started)
	p := elapsed * a.num / a.den
	if p > a.remaining {
		p = a.remaining
	}
	return p
}

// Start begins (or resumes) progress at rate num/den. Starting a finished
// or already-running activity panics.
func (a *Activity) Start(num, den int64) {
	if a.finished {
		panic("sim: start of finished activity")
	}
	if a.running {
		panic("sim: start of running activity")
	}
	if num < 0 || den <= 0 {
		panic(fmt.Sprintf("sim: invalid rate %d/%d", num, den))
	}
	a.num, a.den = num, den
	a.started = a.eng.Now()
	a.running = true
	a.arm()
}

// Pause halts progress, banking partial work. Pausing a non-running
// activity is a no-op.
func (a *Activity) Pause() {
	if !a.running {
		return
	}
	a.remaining -= a.progressed()
	a.running = false
	a.eng.Cancel(a.event)
	a.event = Event{}
}

// SetRate changes the progress rate mid-flight, preserving completed work
// exactly. Calling SetRate on a paused activity just records the new rate
// for the next Start... it is only valid while running.
func (a *Activity) SetRate(num, den int64) {
	if !a.running {
		panic("sim: SetRate on non-running activity")
	}
	if num < 0 || den <= 0 {
		panic(fmt.Sprintf("sim: invalid rate %d/%d", num, den))
	}
	a.remaining -= a.progressed()
	a.num, a.den = num, den
	a.started = a.eng.Now()
	a.eng.Cancel(a.event)
	a.event = Event{}
	a.arm()
}

// arm schedules the completion event for the current leg.
func (a *Activity) arm() {
	if a.num == 0 {
		return // stalled: no completion until rate changes
	}
	// ceil(remaining * den / num) virtual ns to finish.
	d := (a.remaining*a.den + a.num - 1) / a.num
	a.event = a.eng.After(Duration(d), a.complete)
}

func (a *Activity) complete() {
	a.remaining = 0
	a.running = false
	a.finished = true
	a.event = Event{}
	if a.onDone != nil {
		a.onDone()
	}
}
