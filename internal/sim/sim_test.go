package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleAndRunOrdersByTime(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.RunAll(0)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %v, want 30", e.Now())
	}
}

func TestFIFOTieBreakAtSameInstant(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.RunAll(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant order %v not FIFO", got)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	e.RunAll(0)
	if at != 150 {
		t.Fatalf("nested After fired at %v, want 150", at)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	e.Cancel(ev)
	e.RunAll(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	// Double-cancel and zero-handle cancel are no-ops.
	e.Cancel(ev)
	e.Cancel(Event{})
}

func TestCancelFromWithinEarlierEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(20, func() { fired = true })
	e.Schedule(10, func() { e.Cancel(ev) })
	e.RunAll(0)
	if fired {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	n := e.Run(25)
	if n != 2 {
		t.Fatalf("Run(25) executed %d events, want 2", n)
	}
	if e.Now() != 25 {
		t.Fatalf("Now() = %v after Run(25), want 25", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
}

func TestRunInclusiveAtHorizon(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(25, func() { fired = true })
	e.Run(25)
	if !fired {
		t.Fatal("event at exactly the horizon did not fire")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.RunAll(0)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(5, func() {})
}

func TestNegativeAfterPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("After(-1) did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0ns"},
		{999, "999ns"},
		{1500, "1.5us"},
		{2 * Millisecond, "2ms"},
		{3 * Second, "3s"},
		{-1500, "-1.5us"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestSecondsConversion(t *testing.T) {
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Fatalf("Seconds() = %v, want 2.5", got)
	}
}

// Property: for any set of (time, id) pairs, the engine fires them in
// nondecreasing time order with FIFO ties.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		type rec struct {
			at  Time
			seq int
		}
		var got []rec
		for i, d := range delays {
			at := Time(d)
			i := i
			e.Schedule(at, func() { got = append(got, rec{at, i}) })
		}
		e.RunAll(0)
		if len(got) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool {
			if got[i].at != got[j].at {
				return got[i].at < got[j].at
			}
			return got[i].seq < got[j].seq
		})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestActivityUnitRate(t *testing.T) {
	e := NewEngine()
	done := Time(-1)
	a := NewActivity(e, 1000, func() { done = e.Now() })
	a.Start(1, 1)
	e.RunAll(0)
	if done != 1000 {
		t.Fatalf("activity finished at %v, want 1000", done)
	}
	if !a.Finished() {
		t.Fatal("Finished() = false")
	}
}

func TestActivityHalfRate(t *testing.T) {
	e := NewEngine()
	done := Time(-1)
	a := NewActivity(e, 1000, func() { done = e.Now() })
	a.Start(1, 2)
	e.RunAll(0)
	if done != 2000 {
		t.Fatalf("activity at rate 1/2 finished at %v, want 2000", done)
	}
}

func TestActivityRateChangeMidFlight(t *testing.T) {
	e := NewEngine()
	done := Time(-1)
	a := NewActivity(e, 1000, func() { done = e.Now() })
	a.Start(1, 1)
	// After 400 ns at full rate, drop to rate 1/3: remaining 600 work-ns
	// takes 1800 ns, so completion at 400+1800 = 2200.
	e.Schedule(400, func() { a.SetRate(1, 3) })
	e.RunAll(0)
	if done != 2200 {
		t.Fatalf("finished at %v, want 2200", done)
	}
}

func TestActivityPauseResume(t *testing.T) {
	e := NewEngine()
	done := Time(-1)
	a := NewActivity(e, 1000, func() { done = e.Now() })
	a.Start(1, 1)
	e.Schedule(300, func() { a.Pause() })
	e.Schedule(500, func() { a.Start(1, 1) })
	e.RunAll(0)
	if done != 1200 {
		t.Fatalf("finished at %v, want 1200 (300 done + 200 paused + 700 left)", done)
	}
}

func TestActivityZeroRateStalls(t *testing.T) {
	e := NewEngine()
	done := false
	a := NewActivity(e, 1000, func() { done = true })
	a.Start(0, 1)
	e.Run(1_000_000)
	if done {
		t.Fatal("stalled activity completed")
	}
	if got := a.Remaining(); got != 1000 {
		t.Fatalf("Remaining() = %d while stalled, want 1000", got)
	}
	a.SetRate(1, 1)
	e.RunAll(0)
	if !done {
		t.Fatal("activity never completed after un-stalling")
	}
}

func TestActivityZeroWorkCompletesImmediately(t *testing.T) {
	e := NewEngine()
	done := Time(-1)
	a := NewActivity(e, 0, func() { done = e.Now() })
	e.Schedule(10, func() { a.Start(1, 1) })
	e.RunAll(0)
	if done != 10 {
		t.Fatalf("zero-work activity finished at %v, want 10", done)
	}
}

func TestActivityRemainingMidFlight(t *testing.T) {
	e := NewEngine()
	a := NewActivity(e, 1000, nil)
	a.Start(1, 1)
	var mid int64
	e.Schedule(250, func() { mid = a.Remaining() })
	e.RunAll(0)
	if mid != 750 {
		t.Fatalf("Remaining() at t=250 = %d, want 750", mid)
	}
}

// Property: under any sequence of rate changes with rates ≥ 1/8, total
// virtual time to complete W work-ns is at most 8·W and at least W·min-ratio;
// and work is conserved (activity always finishes).
func TestPropertyActivityConservation(t *testing.T) {
	f := func(seed int64, w uint16) bool {
		work := int64(w) + 1
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		finished := Time(-1)
		a := NewActivity(e, work, func() { finished = e.Now() })
		a.Start(1, 1)
		// Random rate perturbations at random instants.
		at := Time(0)
		for i := 0; i < 5; i++ {
			at += Time(rng.Intn(int(work)) + 1)
			num, den := int64(rng.Intn(4)+1), int64(rng.Intn(8)+1)
			e.Schedule(at, func() {
				if !a.Finished() {
					a.SetRate(num, den)
				}
			})
		}
		e.RunAll(0)
		if finished < 0 {
			return false // never completed
		}
		// Slowest possible rate is 1/8, so upper bound 8*work plus
		// rounding slack per leg.
		return finished <= Time(8*work+16)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestActivityDoubleStartPanics(t *testing.T) {
	e := NewEngine()
	a := NewActivity(e, 10, nil)
	a.Start(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("double Start did not panic")
		}
	}()
	a.Start(1, 1)
}

func TestRunAllLimitGuards(t *testing.T) {
	e := NewEngine()
	var rearm func()
	rearm = func() { e.After(1, rearm) }
	e.After(1, rearm)
	defer func() {
		if recover() == nil {
			t.Fatal("RunAll with self-rearming event did not hit the limit guard")
		}
	}()
	e.RunAll(100)
}

func TestAccessorsAndGuards(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(10, func() {})
	if ev.Time() != 10 {
		t.Fatalf("Event.Time = %v", ev.Time())
	}
	if e.Steps() != 0 {
		t.Fatal("Steps before run")
	}
	e.RunAll(0)
	if e.Steps() != 1 {
		t.Fatalf("Steps = %d", e.Steps())
	}

	defer func() {
		if recover() == nil {
			t.Fatal("nil func accepted")
		}
	}()
	e.Schedule(e.Now()+1, nil)
}

func TestActivityRunningAccessor(t *testing.T) {
	e := NewEngine()
	a := NewActivity(e, 100, nil)
	if a.Running() {
		t.Fatal("running before start")
	}
	a.Start(1, 1)
	if !a.Running() {
		t.Fatal("not running after start")
	}
	e.RunAll(0)
	if a.Running() {
		t.Fatal("running after completion")
	}
}

func TestActivityNegativeWorkPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("negative work accepted")
		}
	}()
	NewActivity(e, -1, nil)
}

func TestActivityBadRatePanics(t *testing.T) {
	e := NewEngine()
	a := NewActivity(e, 100, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-denominator rate accepted")
		}
	}()
	a.Start(1, 0)
}

func TestActivityStartFinishedPanics(t *testing.T) {
	e := NewEngine()
	a := NewActivity(e, 10, nil)
	a.Start(1, 1)
	e.RunAll(0)
	defer func() {
		if recover() == nil {
			t.Fatal("restart of finished activity accepted")
		}
	}()
	a.Start(1, 1)
}

func TestActivitySetRateWhilePausedPanics(t *testing.T) {
	e := NewEngine()
	a := NewActivity(e, 100, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("SetRate on non-running activity accepted")
		}
	}()
	a.SetRate(1, 2)
}

func TestRunSkipsCancelledHead(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(5, func() {})
	fired := false
	e.Schedule(10, func() { fired = true })
	e.Cancel(ev)
	if n := e.Run(20); n != 1 {
		t.Fatalf("Run executed %d events", n)
	}
	if !fired {
		t.Fatal("later event did not fire")
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %v after horizon run", e.Now())
	}
}
