package sim

import (
	"testing"

	"rtmdm/internal/metrics"
)

// TestEngineInstruments verifies the kernel's metric accounting: scheduled =
// fired + cancelled + still-pending, and the slab high-water mark equals the
// peak number of simultaneously pending events.
func TestEngineInstruments(t *testing.T) {
	r := metrics.NewRegistry()
	ins := &Instruments{
		Scheduled:     r.Counter("sim.events_scheduled", "events", ""),
		Fired:         r.Counter("sim.events_fired", "events", ""),
		Cancelled:     r.Counter("sim.events_cancelled", "events", ""),
		SlabHighWater: r.Gauge("sim.slab_high_water", "slots", ""),
	}
	e := NewEngine()
	e.SetInstruments(ins)

	// Three pending at once, one cancelled, one fired, two left pending.
	var evs []Event
	for i := 0; i < 3; i++ {
		evs = append(evs, e.Schedule(Time(10*(i+1)), func() {}))
	}
	evs[1].Cancel()
	e.Run(20)
	e.Schedule(100, func() {}) // reuses a freed slot: slab must not grow

	if got := ins.Scheduled.Value(); got != 4 {
		t.Fatalf("scheduled = %d, want 4", got)
	}
	if got := ins.Fired.Value(); got != 1 {
		t.Fatalf("fired = %d, want 1", got)
	}
	if got := ins.Cancelled.Value(); got != 1 {
		t.Fatalf("cancelled = %d, want 1", got)
	}
	if got := ins.SlabHighWater.Value(); got != 3 {
		t.Fatalf("slab high-water = %d, want 3", got)
	}
}

// TestEngineInstrumentedStillZeroAlloc: attaching a sink must not cost the
// kernel its allocation-free hot path.
func TestEngineInstrumentedStillZeroAlloc(t *testing.T) {
	r := metrics.NewRegistry()
	e := NewEngine()
	e.SetInstruments(&Instruments{
		Scheduled:     r.Counter("s", "", ""),
		Fired:         r.Counter("f", "", ""),
		Cancelled:     r.Counter("c", "", ""),
		SlabHighWater: r.Gauge("g", "", ""),
	})
	fn := func() {}
	// Warm the slab so steady state needs no growth.
	for i := 0; i < 64; i++ {
		e.Schedule(e.Now(), fn)
	}
	e.RunAll(0)
	if a := testing.AllocsPerRun(100, func() {
		ev := e.Schedule(e.Now()+1, fn)
		e.Schedule(e.Now()+2, fn)
		ev.Cancel()
		e.Run(e.Now() + 2)
	}); a != 0 {
		t.Fatalf("instrumented steady state allocates %.1f/op, want 0", a)
	}
}
