// Package rtmdm is a reproduction of "RT-MDM: Real-Time Scheduling
// Framework for Multi-DNN on MCU Using External Memory" (DAC 2024) as a
// deterministic virtual-time simulation stack in pure Go.
//
// The package is the stable public facade over the internal subsystems:
//
//   - internal/nn, internal/models — an int8 quantized DNN substrate and an
//     MLPerf-Tiny-shaped model zoo that really executes;
//   - internal/cost, internal/platform — MCU timing models (CPU, SRAM,
//     external memory, DMA, bus contention) and their simulated devices;
//   - internal/segment — SRAM- and preemption-granularity-bounded model
//     segmentation;
//   - internal/core, internal/exec — the RT-MDM scheduling framework
//     (policies, provisioning) and the virtual-time executor;
//   - internal/analysis — response-time and demand-bound schedulability
//     tests, sound against the executor by construction and by property
//     test;
//   - internal/workload, internal/expr — randomized task-set generation and
//     the reconstructed evaluation (one experiment per table/figure).
//
// # Quick start
//
//	plat := rtmdm.DefaultPlatform()
//	sys := rtmdm.NewSystem(plat, rtmdm.RTMDM())
//	sys.AddTask("kws", "ds-cnn", 50*rtmdm.Millisecond)
//	sys.AddTask("det", "mobilenetv1-0.25", 150*rtmdm.Millisecond)
//	set, _ := sys.Build()
//	verdict, _ := rtmdm.Analyze(set, plat, rtmdm.RTMDM())
//	result, _ := rtmdm.Simulate(set, plat, rtmdm.RTMDM(), rtmdm.Second)
package rtmdm

import (
	"fmt"
	"io"

	"rtmdm/internal/analysis"
	"rtmdm/internal/core"
	"rtmdm/internal/cosim"
	"rtmdm/internal/cost"
	"rtmdm/internal/dse"
	"rtmdm/internal/exec"
	"rtmdm/internal/expr"
	"rtmdm/internal/fault"
	"rtmdm/internal/models"
	"rtmdm/internal/nn"
	"rtmdm/internal/scenario"
	"rtmdm/internal/segment"
	"rtmdm/internal/sim"
	"rtmdm/internal/task"
	"rtmdm/internal/trace"
	"rtmdm/internal/workload"
)

// Re-exported core types. The aliases keep one canonical definition while
// letting users import only this package.
type (
	// Platform describes the target MCU (CPU, memories, bus).
	Platform = cost.Platform
	// Policy is a scheduling configuration (RT-MDM or a baseline).
	Policy = core.Policy
	// Task is one periodic DNN inference task.
	Task = task.Task
	// TaskSet is a schedulable collection of tasks.
	TaskSet = task.Set
	// Model is an executable quantized DNN graph.
	Model = nn.Model
	// Tensor is an int8 activation tensor.
	Tensor = nn.Tensor
	// SegmentPlan is a model's segmentation for a platform.
	SegmentPlan = segment.Plan
	// Result carries a simulation's trace and metrics.
	Result = exec.Result
	// Verdict is a schedulability test outcome.
	Verdict = analysis.Verdict
	// Time is a virtual-time instant (ns); Duration a span.
	Time = sim.Time
	// Duration is a virtual-time span in nanoseconds.
	Duration = sim.Duration
	// WorkloadParams configures random task-set generation.
	WorkloadParams = workload.Params
	// WorkloadSpec is a policy-independent random task-set description.
	WorkloadSpec = workload.SetSpec
	// WorkloadTaskSpec is one task (model, period, deadline) in a
	// WorkloadSpec.
	WorkloadTaskSpec = workload.TaskSpec
	// ExperimentConfig tunes evaluation scale.
	ExperimentConfig = expr.Config
	// ExperimentTable is a rendered experiment result.
	ExperimentTable = expr.Table
	// DesignKnobs enumerates the configuration axes a design-space
	// exploration sweeps.
	DesignKnobs = dse.Knobs
	// DesignPoint is one evaluated hardware/software configuration.
	DesignPoint = dse.Point
	// DesignResult carries an exploration's grid and Pareto frontier.
	DesignResult = dse.Result
	// FaultConfig describes a deterministic fault-injection campaign
	// (overruns, release jitter, DMA slowdowns, transfer faults).
	FaultConfig = fault.Config
	// FaultPlan is a compiled, concurrency-safe injection plan.
	FaultPlan = fault.Plan
	// OverrunPolicy selects how the executor handles deadline overruns
	// (continue, abort, skip-next).
	OverrunPolicy = core.OverrunPolicy
)

// Overrun-handling policies (Policy.Overrun).
const (
	// OverrunContinue lets an overrunning job finish late (default).
	OverrunContinue = core.OverrunContinue
	// OverrunAbort kills a job at its deadline, reclaiming CPU, DMA and
	// staged buffers.
	OverrunAbort = core.OverrunAbort
	// OverrunSkipNext lets the job finish late but sheds its next release.
	OverrunSkipNext = core.OverrunSkipNext
)

// Virtual-time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Scheduling policies.
var (
	// RTMDM is the proposed framework (segment preemption + prefetch
	// pipeline + gated priority DMA).
	RTMDM = core.RTMDM
	// RTMDMDepth varies the prefetch buffer depth.
	RTMDMDepth = core.RTMDMDepth
	// RTMDMEDF is the EDF variant.
	RTMDMEDF = core.RTMDMEDF
	// RTMDMPerTaskDepth gives each named task its own prefetch window
	// depth (heterogeneous buffering, extension T24).
	RTMDMPerTaskDepth = core.RTMDMPerTaskDepth
	// RTMDMFIFODMA is the memory-unaware arbitration ablation.
	RTMDMFIFODMA = core.RTMDMFIFODMA
	// SerialNPFP is the whole-job non-preemptive baseline (vanilla
	// TFLM-style execution).
	SerialNPFP = core.SerialNPFP
	// SerialSegFP is the segment-preemptive, no-overlap baseline.
	SerialSegFP = core.SerialSegFP
	// ComparisonSet is the headline policy lineup.
	ComparisonSet = core.ComparisonSet
)

// DefaultPlatform returns the default evaluation target (STM32H743-class:
// 480 MHz Cortex-M7, 512 KiB SRAM, 32 MB/s QSPI flash).
func DefaultPlatform() Platform { return cost.STM32H743 }

// Platforms lists the built-in platform presets.
func Platforms() []Platform { return cost.Platforms() }

// PlatformByName resolves a preset platform.
func PlatformByName(name string) (Platform, error) { return cost.PlatformByName(name) }

// ModelNames lists the model zoo.
func ModelNames() []string { return models.Names() }

// BuildModel constructs a zoo model with deterministic synthetic weights.
func BuildModel(name string, seed int64) (*Model, error) { return models.Build(name, seed) }

// SaveModel writes a model as a CRC-protected binary artifact (the
// repository's equivalent of a deployable .tflite blob).
func SaveModel(m *Model, w io.Writer) error { return m.Save(w) }

// LoadModel reads a binary model artifact, verifying its checksum and
// validating the graph.
func LoadModel(r io.Reader) (*Model, error) { return nn.Load(r) }

// NewInput allocates a zeroed input tensor matching the model.
func NewInput(m *Model) *Tensor { return nn.NewTensor(m.Input, m.InQuant) }

// RandomInput fills a fresh input tensor with deterministic pseudo-random
// int8 samples (for demos and benchmarks).
func RandomInput(m *Model, seed int64) *Tensor {
	x := NewInput(m)
	s := uint64(seed)*2654435761 + 12345
	for i := range x.Data {
		// xorshift64* keeps the facade free of math/rand.
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		x.Data[i] = int8(s % 255)
	}
	return x
}

// SegmentModel produces the segmentation a policy would deploy for one of
// n co-resident tasks on the platform.
func SegmentModel(m *Model, plat Platform, pol Policy, n int) (*SegmentPlan, error) {
	return segment.BuildLimits(m, plat, pol.Limits(plat, n), segment.Greedy)
}

// System assembles a multi-DNN task set for one platform and policy.
type System struct {
	plat  Platform
	pol   Policy
	specs []sysTask
}

type sysTask struct {
	name     string
	model    string
	seed     int64
	period   Duration
	deadline Duration
}

// NewSystem starts building a task set targeting the platform and policy.
func NewSystem(plat Platform, pol Policy) *System {
	return &System{plat: plat, pol: pol}
}

// AddTask registers a periodic inference of a zoo model with an implicit
// deadline (= period).
func (s *System) AddTask(name, model string, period Duration) *System {
	return s.AddTaskDeadline(name, model, period, period)
}

// AddTaskDeadline registers a periodic inference with an explicit relative
// deadline (constrained: deadline ≤ period).
func (s *System) AddTaskDeadline(name, model string, period, deadline Duration) *System {
	s.specs = append(s.specs, sysTask{name: name, model: model, seed: 1,
		period: period, deadline: deadline})
	return s
}

// Build segments every model under the policy's SRAM share and preemption
// granularity, assigns rate-monotonic priorities, and verifies SRAM
// provisioning. The returned set is ready for Analyze and Simulate.
func (s *System) Build() (*TaskSet, error) {
	if len(s.specs) == 0 {
		return nil, fmt.Errorf("rtmdm: no tasks added")
	}
	lim := s.pol.Limits(s.plat, len(s.specs))
	var ts []*Task
	for _, sp := range s.specs {
		m, err := models.Build(sp.model, sp.seed)
		if err != nil {
			return nil, err
		}
		pl, err := segment.BuildLimits(m, s.plat, lim, segment.Greedy)
		if err != nil {
			return nil, err
		}
		ts = append(ts, &Task{Name: sp.name, Plan: pl,
			Period: sp.period, Deadline: sp.deadline})
	}
	set := task.NewSet(ts...)
	set.AssignRM()
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if err := core.Provision(set, s.plat, s.pol); err != nil {
		return nil, err
	}
	return set, nil
}

// Simulate runs the task set on the platform under the policy in virtual
// time until the horizon, returning the full trace and metrics. The trace
// is invariant-checked before return.
func Simulate(set *TaskSet, plat Platform, pol Policy, horizon Duration) (*Result, error) {
	return exec.Run(set, plat, pol, horizon)
}

// NewFaultPlan compiles a fault configuration into an injection plan for
// runs up to the given horizon. Every decision is a pure function of the
// seed, so a fixed seed reproduces the exact fault sequence. It returns
// (nil, nil) — inject nothing — when the configuration enables no faults.
func NewFaultPlan(cfg FaultConfig, horizon Duration) (*FaultPlan, error) {
	return fault.New(cfg, horizon)
}

// SimulateWithFaults runs like Simulate while injecting the plan's faults
// (nil plan = nominal run, identical to Simulate). Overrun handling follows
// pol.Overrun.
func SimulateWithFaults(set *TaskSet, plat Platform, pol Policy, horizon Duration, plan *FaultPlan) (*Result, error) {
	return exec.RunWithFaults(set, plat, pol, horizon, plan)
}

// Analyze applies the schedulability test matching the policy. It returns
// an error for policies without a sound offline test (FIFO DMA ablation).
func Analyze(set *TaskSet, plat Platform, pol Policy) (Verdict, error) {
	test, err := analysis.ForPolicy(pol)
	if err != nil {
		return Verdict{}, err
	}
	return test(set, plat), nil
}

// LoadScenario reads a JSON deployment description (see internal/scenario
// for the schema) and instantiates it: a provisioned task set plus the
// platform, policy and horizon it names.
func LoadScenario(path string) (*TaskSet, Platform, Policy, Duration, error) {
	sc, err := scenario.Load(path)
	if err != nil {
		return nil, Platform{}, Policy{}, 0, err
	}
	set, plat, pol, err := sc.Build()
	if err != nil {
		return nil, Platform{}, Policy{}, 0, err
	}
	return set, plat, pol, sc.Horizon(), nil
}

// RenderTimeline writes an ASCII Gantt chart of a simulation result's
// window [from, to) at the given column width (0 = default 100).
func RenderTimeline(w io.Writer, r *Result, from, to Time, width int) error {
	return trace.Timeline{From: from, To: to, Width: width}.Render(w, r.Trace, r.Infos)
}

// ExecutePlan runs one inference through a segmentation plan's staged
// pieces (slicing fractionally split layers), producing output bit-identical
// to Model.Forward — the property internal/cosim proves for the whole zoo.
func ExecutePlan(pl *SegmentPlan, input *Tensor) (*Tensor, error) {
	return cosim.ExecutePlan(pl, input)
}

// Breakdown binary-searches the largest period-compression factor α under
// which the policy's analysis still accepts the set (the classic breakdown
// utilization metric): α > 1 means timing headroom. It errors for policies
// without a sound test.
func Breakdown(set *TaskSet, plat Platform, pol Policy, tol float64) (float64, error) {
	test, err := analysis.ForPolicy(pol)
	if err != nil {
		return 0, err
	}
	return analysis.BreakdownFactor(set, plat, test, tol), nil
}

// DefaultDesignKnobs returns a practical exploration grid for a platform:
// staging partitions from 1/8 to 1/2 of SRAM, depths 2-4, preemption
// granularities from 0.25 to 2 ms, and whole-segment vs 8 KiB chunked DMA.
func DefaultDesignKnobs(plat Platform) DesignKnobs { return dse.DefaultKnobs(plat) }

// ExploreDesignSpace evaluates the full knob grid for one workload: each
// configuration is re-segmented, provisioned and analyzed, and the result
// carries the Pareto frontier between staging-SRAM cost and guaranteed
// timing margin (breakdown factor). Use DesignResult.Recommend to pick the
// deployment configuration.
func ExploreDesignSpace(spec WorkloadSpec, plat Platform, k DesignKnobs) (*DesignResult, error) {
	return dse.Explore(spec, plat, k)
}

// GenerateWorkload draws a random policy-independent task-set spec.
func GenerateWorkload(p WorkloadParams) (WorkloadSpec, error) { return workload.Generate(p) }

// Experiments lists the reconstructed evaluation, in DESIGN.md order.
func Experiments() []expr.Experiment { return expr.All() }

// RunExperiment regenerates one table/figure by ID (e.g. "F4").
func RunExperiment(id string, cfg ExperimentConfig) (*ExperimentTable, error) {
	e, err := expr.ByID(id)
	if err != nil {
		return nil, err
	}
	return e.Run(cfg)
}

// DefaultExperimentConfig is the full-scale evaluation configuration.
func DefaultExperimentConfig() ExperimentConfig { return expr.DefaultConfig() }

// QuickExperimentConfig shrinks sample counts for fast smoke runs.
func QuickExperimentConfig() ExperimentConfig { return expr.QuickConfig() }
