# Verification tiers. Tier-1 is the gate every change must pass; the race
# tier adds `go vet` and the race detector over the packages with nontrivial
# concurrency (parallel sweeps, sync.Map caches, pooled engines); the lint
# tier runs the repo's custom analyzers (docs/STATIC_ANALYSIS.md).
# See docs/PERFORMANCE.md §4 for the full performance-PR checklist.

GO ?= go

.PHONY: verify vet lint race fuzz bench golden smoke cluster-smoke corpus-smoke

# Tier-1: build + full test suite.
verify:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Custom analyzers: determinism, millitime, hotpathalloc, metricname,
# ctxflow, lockhold, goroleak. See docs/STATIC_ANALYSIS.md.
lint:
	$(GO) run ./cmd/rtmdm-lint ./...

# Race tier: vet plus the race detector on the concurrent packages
# (internal/lint is included because its cross-package fact store is
# shared mutable state; internal/corpus because its runner merges worker
# outcomes under a shared checkpoint mutex).
race: vet
	$(GO) test -race ./internal/expr ./internal/dse ./internal/workload ./internal/fault ./internal/exec ./internal/server ./internal/analysis ./internal/cluster ./internal/lint ./internal/corpus

# Fuzz smoke: short coverage-guided runs of the scenario parser/builder,
# the canonical-hash round trip, and the incremental-vs-cold analysis
# differential (the fuzz engine takes one -fuzz target at a time;
# FuzzParse also drives Build and FaultPlan on every accepted input).
fuzz:
	$(GO) test -run='^FuzzParse$$' -fuzz='^FuzzParse$$' -fuzztime=10s ./internal/scenario
	$(GO) test -run='^FuzzCanonicalHash$$' -fuzz='^FuzzCanonicalHash$$' -fuzztime=10s ./internal/scenario
	$(GO) test -run='^FuzzIncrementalRTA$$' -fuzz='^FuzzIncrementalRTA$$' -fuzztime=10s ./internal/analysis

# The load-bearing benchmarks (compare with benchstat; -count=5 minimum).
bench:
	$(GO) test -bench 'ExpF4|ExpF5|SimulateCaseStudy' -benchmem -count=5 -run '^$$' .

# Byte-identity smoke: quick tables to stdout for diffing against a baseline.
golden:
	$(GO) run ./cmd/rtmdm-bench -all -quick -csv

# Service smoke: build rtmdm-serve + rtmdm-loadgen, drive a live server,
# require the cache-hit path to be >= 10x faster than cold analyze, and
# assert a clean drain on SIGTERM. See docs/SERVER.md.
smoke:
	./scripts/smoke.sh

# Cluster smoke: 1-vs-4-shard throughput scaling behind rtmdm-gateway,
# byte-identical seeded admission logs (chaos restarts included), and
# weighted tenant fairness. Set CLUSTER_SMOKE_MIN_SCALE below 2.5 on
# machines with fewer than ~5 cores. See docs/CLUSTER.md.
cluster-smoke:
	./scripts/cluster_smoke.sh

# Corpus smoke: sweep the pinned 1000-scenario smoke spec with the
# differential soundness oracle — zero violations, byte-identical
# manifest at 1 vs N workers, and the -inject-bug liveness self-check.
# See docs/CORPUS.md.
corpus-smoke:
	./scripts/corpus_smoke.sh
