package rtmdm

import (
	"os"
	"strings"
	"testing"
)

func TestSystemBuildAnalyzeSimulate(t *testing.T) {
	plat := DefaultPlatform()
	pol := RTMDM()
	set, err := NewSystem(plat, pol).
		AddTask("kws", "ds-cnn", 50*Millisecond).
		AddTask("det", "mobilenetv1-0.25", 150*Millisecond).
		AddTask("anomaly", "autoencoder", 100*Millisecond).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Tasks) != 3 {
		t.Fatalf("built %d tasks", len(set.Tasks))
	}

	v, err := Analyze(set, plat, pol)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Schedulable {
		t.Fatalf("case-study set not schedulable: %s", v.Reason)
	}

	r, err := Simulate(set, plat, pol, 600*Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics.AnyMiss() {
		t.Fatal("simulation missed a deadline despite positive verdict")
	}
	for name, tm := range r.Metrics.PerTask {
		if bound, ok := v.WCRT[name]; ok && tm.MaxResponse > bound {
			t.Fatalf("%s observed %v > bound %v", name, tm.MaxResponse, bound)
		}
	}
}

func TestSystemRejectsBadInputs(t *testing.T) {
	plat := DefaultPlatform()
	if _, err := NewSystem(plat, RTMDM()).Build(); err == nil {
		t.Fatal("empty system built")
	}
	if _, err := NewSystem(plat, RTMDM()).
		AddTask("x", "no-such-model", Second).Build(); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := NewSystem(plat, RTMDM()).
		AddTaskDeadline("x", "ds-cnn", 100*Millisecond, 200*Millisecond).Build(); err == nil {
		t.Fatal("deadline > period accepted")
	}
}

func TestAnalyzeFIFOPolicyIsPessimistic(t *testing.T) {
	plat := DefaultPlatform()
	mk := func(pol Policy) *TaskSet {
		set, err := NewSystem(plat, pol).
			AddTask("a", "ds-cnn", 100*Millisecond).
			AddTask("b", "autoencoder", 200*Millisecond).Build()
		if err != nil {
			t.Fatal(err)
		}
		return set
	}
	vf, err := Analyze(mk(RTMDMFIFODMA()), plat, RTMDMFIFODMA())
	if err != nil {
		t.Fatal(err)
	}
	vg, err := Analyze(mk(RTMDM()), plat, RTMDM())
	if err != nil {
		t.Fatal(err)
	}
	if vf.WCRT["a"] < vg.WCRT["a"] {
		t.Fatalf("FIFO bound %v < gated bound %v", vf.WCRT["a"], vg.WCRT["a"])
	}
}

func TestFacadeCatalogs(t *testing.T) {
	if len(ModelNames()) != 8 {
		t.Fatalf("zoo size %d", len(ModelNames()))
	}
	if len(Platforms()) != 3 {
		t.Fatalf("platform presets %d", len(Platforms()))
	}
	if _, err := PlatformByName("stm32f746"); err != nil {
		t.Fatal(err)
	}
	m, err := BuildModel("lenet5", 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalParamBytes() == 0 {
		t.Fatal("model has no parameters")
	}
	if len(Experiments()) != 25 {
		t.Fatalf("experiment registry has %d entries, want 25", len(Experiments()))
	}
}

func TestRunExperimentSmoke(t *testing.T) {
	cfg := QuickExperimentConfig()
	cfg.Sets = 4
	tb, err := RunExperiment("T1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.String(), "mobilenetv1-0.25") {
		t.Fatal("T1 table missing zoo entry")
	}
	if _, err := RunExperiment("Z9", cfg); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestGenerateWorkloadFacade(t *testing.T) {
	spec, err := GenerateWorkload(WorkloadParams{
		Seed: 5, N: 3, Util: 0.4, Platform: DefaultPlatform(),
	})
	if err != nil {
		t.Fatal(err)
	}
	set, err := spec.Instantiate(DefaultPlatform(), RTMDM())
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Tasks) != 3 {
		t.Fatalf("instantiated %d tasks", len(set.Tasks))
	}
}

func TestFacadeInferenceHelpers(t *testing.T) {
	m, err := BuildModel("lenet5", 2)
	if err != nil {
		t.Fatal(err)
	}
	x := NewInput(m)
	if x.Shape != m.Input {
		t.Fatalf("NewInput shape %v", x.Shape)
	}
	a := RandomInput(m, 9)
	b := RandomInput(m, 9)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("RandomInput not deterministic")
		}
	}
	c := RandomInput(m, 10)
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical inputs")
	}
	if y := m.Forward(a); y.Shape != m.OutShape() {
		t.Fatal("forward through facade tensors failed")
	}
}

func TestFacadeSegmentModel(t *testing.T) {
	m, err := BuildModel("autoencoder", 1)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := SegmentModel(m, DefaultPlatform(), RTMDM(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if pl.NumSegments() < 2 {
		t.Fatalf("autoencoder segmented into %d", pl.NumSegments())
	}
}

func TestFacadeTimelineAndScenario(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/s.json"
	cfg := `{"horizon_ms": 200, "tasks":[{"name":"a","model":"ds-cnn","period_ms":50}]}`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	set, plat, pol, horizon, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if horizon != 200*Millisecond || len(set.Tasks) != 1 {
		t.Fatalf("scenario horizon %v tasks %d", horizon, len(set.Tasks))
	}
	res, err := Simulate(set, plat, pol, horizon)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RenderTimeline(&sb, res, 0, 100*Millisecond, 80); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "CPU") || !strings.Contains(sb.String(), "key") {
		t.Fatalf("timeline output:\n%s", sb.String())
	}
}

func TestFacadeBreakdown(t *testing.T) {
	plat := DefaultPlatform()
	set, err := NewSystem(plat, RTMDM()).
		AddTask("kws", "ds-cnn", 100*Millisecond).Build()
	if err != nil {
		t.Fatal(err)
	}
	alpha, err := Breakdown(set, plat, RTMDM(), 0.02)
	if err != nil {
		t.Fatal(err)
	}
	// ds-cnn pipe ≈ 10 ms against a 100 ms period: α ≈ 9–10.
	if alpha < 5 || alpha > 12 {
		t.Fatalf("breakdown α = %v, want ≈ 9", alpha)
	}
}

func TestFacadeExploreDesignSpace(t *testing.T) {
	plat := DefaultPlatform()
	spec, err := GenerateWorkload(WorkloadParams{
		Seed: 5, N: 3, Util: 0.4, Platform: plat,
	})
	if err != nil {
		t.Fatal(err)
	}
	knobs := DesignKnobs{
		StagingBytes:  []int64{128 << 10, 192 << 10},
		Depths:        []int{2},
		GranularityNs: []int64{1_000_000},
		ChunkBytes:    []int64{0},
	}
	res, err := ExploreDesignSpace(spec, plat, knobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("grid size %d, want 2", len(res.Points))
	}
	if res.Schedulable() == 0 || len(res.Frontier) == 0 {
		t.Fatalf("U=0.4 exploration found nothing schedulable: %+v", res.Points)
	}
	best, ok := res.Recommend(1.0)
	if !ok || !best.Schedulable {
		t.Fatalf("no recommendation: %+v ok=%v", best, ok)
	}
	if err := best.Policy().Validate(); err != nil {
		t.Fatalf("recommended policy invalid: %v", err)
	}
	if k := DefaultDesignKnobs(plat); len(k.StagingBytes) == 0 {
		t.Fatal("empty default knobs")
	}
}
