package rtmdm

// One benchmark per reconstructed table/figure (DESIGN.md §6). Each bench
// regenerates its experiment end-to-end — workload generation, offline
// analysis, virtual-time simulation — at a reduced-but-structurally-
// identical sample count, and reports domain metrics alongside wall time.
//
// Regenerate the full evaluation with:
//
//	go run ./cmd/rtmdm-bench -all
//
// and the quick benchmark versions with:
//
//	go test -bench=. -benchmem

import (
	"strconv"
	"strings"
	"testing"
)

func benchConfig() ExperimentConfig {
	cfg := QuickExperimentConfig()
	cfg.Sets = 8
	return cfg
}

// runExperiment is the shared bench body.
func runExperiment(b *testing.B, id string) *ExperimentTable {
	b.Helper()
	cfg := benchConfig()
	var tb *ExperimentTable
	var err error
	for i := 0; i < b.N; i++ {
		tb, err = RunExperiment(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	return tb
}

// lastColMean averages the numeric values of one column, ignoring cells
// that fail to parse (units stripped by the caller's transform).
func colMean(tb *ExperimentTable, col int, strip string) (float64, bool) {
	var sum float64
	n := 0
	for _, row := range tb.Rows {
		c := strings.TrimSuffix(row[col], strip)
		v, err := strconv.ParseFloat(c, 64)
		if err != nil {
			continue
		}
		sum += v
		n++
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

func BenchmarkExpT1ModelInventory(b *testing.B) {
	tb := runExperiment(b, "T1")
	if v, ok := colMean(tb, len(tb.Columns)-1, ""); ok {
		b.ReportMetric(v, "mean-speedup")
	}
}

func BenchmarkExpF2IsolatedLatency(b *testing.B) {
	tb := runExperiment(b, "F2")
	if v, ok := colMean(tb, 3, ""); ok {
		b.ReportMetric(v, "mean-speedup")
	}
}

func BenchmarkExpF3BandwidthSweep(b *testing.B) {
	tb := runExperiment(b, "F3")
	// Report the autoencoder speedup at the lowest bandwidth (worst wall).
	for i, c := range tb.Columns {
		if c == "autoencoder" {
			if v, err := strconv.ParseFloat(tb.Rows[0][i], 64); err == nil {
				b.ReportMetric(v, "ae-speedup@16MBps")
			}
		}
	}
}

func BenchmarkExpF4Schedulability(b *testing.B) {
	b.ReportAllocs()
	tb := runExperiment(b, "F4")
	if v, ok := colMean(tb, len(tb.Columns)-1, "%"); ok {
		b.ReportMetric(v, "rtmdm-mean-sched-%")
	}
}

func BenchmarkExpF5EmpiricalMisses(b *testing.B) {
	tb := runExperiment(b, "F5")
	if v, ok := colMean(tb, 1, "%"); ok {
		b.ReportMetric(v, "npfp-mean-missing-%")
	}
}

func BenchmarkExpF6SRAMSweep(b *testing.B) {
	tb := runExperiment(b, "F6")
	if v, ok := colMean(tb, len(tb.Columns)-1, "%"); ok {
		b.ReportMetric(v, "rtmdm-mean-sched-%")
	}
}

func BenchmarkExpF7TaskCountSweep(b *testing.B) {
	tb := runExperiment(b, "F7")
	if v, ok := colMean(tb, len(tb.Columns)-1, "%"); ok {
		b.ReportMetric(v, "rtmdm-mean-sched-%")
	}
}

func BenchmarkExpT8Pessimism(b *testing.B) {
	tb := runExperiment(b, "T8")
	if v, ok := colMean(tb, 3, ""); ok {
		b.ReportMetric(v, "mean-bound/observed")
	}
}

func BenchmarkExpT9Ablations(b *testing.B) {
	runExperiment(b, "T9")
}

func BenchmarkExpF10CaseStudy(b *testing.B) {
	tb := runExperiment(b, "F10")
	if v, ok := colMean(tb, 3, ""); ok {
		b.ReportMetric(v, "mean-max-resp-ms")
	}
}

func BenchmarkExpT11Contention(b *testing.B) {
	tb := runExperiment(b, "T11")
	if v, ok := colMean(tb, 3, ""); ok {
		b.ReportMetric(v, "mean-mobilenet-ms")
	}
}

func BenchmarkExpF12EDFVariant(b *testing.B) {
	tb := runExperiment(b, "F12")
	if v, ok := colMean(tb, len(tb.Columns)-1, "%"); ok {
		b.ReportMetric(v, "edf-mean-sched-%")
	}
}

// Micro-benchmarks of the load-bearing primitives, so performance
// regressions in the simulator itself are visible separately from the
// experiment pipelines.

func BenchmarkSimulateCaseStudySecond(b *testing.B) {
	plat := DefaultPlatform()
	pol := RTMDM()
	set, err := NewSystem(plat, pol).
		AddTask("kws", "ds-cnn", 50*Millisecond).
		AddTask("det", "mobilenetv1-0.25", 150*Millisecond).
		AddTask("anomaly", "autoencoder", 100*Millisecond).
		Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(set, plat, pol, Second); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeRTMDM(b *testing.B) {
	plat := DefaultPlatform()
	pol := RTMDM()
	set, err := NewSystem(plat, pol).
		AddTask("kws", "ds-cnn", 50*Millisecond).
		AddTask("det", "mobilenetv1-0.25", 150*Millisecond).
		AddTask("anomaly", "autoencoder", 100*Millisecond).
		Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(set, plat, pol); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelForwardDSCNN(b *testing.B) {
	m, err := BuildModel("ds-cnn", 1)
	if err != nil {
		b.Fatal(err)
	}
	x := newRandomInput(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}

func BenchmarkSegmentationMobileNet(b *testing.B) {
	m, err := BuildModel("mobilenetv1-0.25", 1)
	if err != nil {
		b.Fatal(err)
	}
	plat := DefaultPlatform()
	pol := RTMDM()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := segmentBuildForBench(m, plat, pol); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpF13Platforms(b *testing.B) {
	runExperiment(b, "F13")
}

func BenchmarkExpT13Granularity(b *testing.B) {
	tb := runExperiment(b, "T13")
	if v, ok := colMean(tb, 1, "%"); ok {
		b.ReportMetric(v, "zero-switch-mean-sched-%")
	}
}

func BenchmarkExpT15ChunkedDMA(b *testing.B) {
	tb := runExperiment(b, "T15")
	if v, ok := colMean(tb, 1, "%"); ok {
		b.ReportMetric(v, "mean-sched-%@U0.6")
	}
}

func BenchmarkExpT16CacheSensitivity(b *testing.B) {
	tb := runExperiment(b, "T16")
	if v, ok := colMean(tb, 1, ""); ok {
		b.ReportMetric(v, "mobilenet-mean-ms")
	}
}

func BenchmarkExpT17Energy(b *testing.B) {
	tb := runExperiment(b, "T17")
	if v, ok := colMean(tb, 5, ""); ok {
		b.ReportMetric(v, "mean-avg-power-mW")
	}
}

func BenchmarkExpT18Tuning(b *testing.B) {
	tb := runExperiment(b, "T18")
	if v, ok := colMean(tb, 2, "%"); ok {
		b.ReportMetric(v, "tuned-mean-sched-%")
	}
}

func BenchmarkExpF19Deadlines(b *testing.B) {
	tb := runExperiment(b, "F19")
	if v, ok := colMean(tb, len(tb.Columns)-1, "%"); ok {
		b.ReportMetric(v, "rtmdm-mean-sched-%")
	}
}

func BenchmarkExpF20Jitter(b *testing.B) {
	tb := runExperiment(b, "F20")
	if v, ok := colMean(tb, 3, "%"); ok {
		b.ReportMetric(v, "rtmdm-mean-sched-%")
	}
}

func BenchmarkExpT21Seeds(b *testing.B) {
	runExperiment(b, "T21")
}

func BenchmarkExpT22Segmentation(b *testing.B) {
	runExperiment(b, "T22")
}

func BenchmarkExpT23DesignSpace(b *testing.B) {
	runExperiment(b, "T23")
}

func BenchmarkExpT24PerTaskDepth(b *testing.B) {
	runExperiment(b, "T24")
}

func BenchmarkExpT25Robustness(b *testing.B) {
	runExperiment(b, "T25")
}
