#!/usr/bin/env bash
# Chaos helper for the cluster smoke: SIGTERM one shard (it drains and
# writes its admission snapshot), wait for it to exit, then relaunch it
# from the command file cluster_smoke.sh wrote and wait for its health
# endpoint — a warm restart. rtmdm-loadgen invokes it via
#
#   -chaos-cmd "CLUSTER_RUN_DIR=<rundir> scripts/restart_shard.sh {shard}"
#
# so the kill schedule stays seed-deterministic while the restart
# mechanics live here.
set -euo pipefail

shard="${1:?usage: restart_shard.sh SHARD_INDEX}"
rundir="${CLUSTER_RUN_DIR:?CLUSTER_RUN_DIR must point at the smoke run directory}"
pidfile="$rundir/shard-$shard.pid"
cmdfile="$rundir/shard-$shard.cmd"
portfile="$rundir/shard-$shard.port"

if [ ! -f "$pidfile" ]; then
    echo "restart_shard: no pid file at $pidfile (is the smoke run still up?)" >&2
    exit 1
fi
pid="$(cat "$pidfile")"
kill -TERM "$pid" 2>/dev/null || true
for _ in $(seq 1 100); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$pid" 2>/dev/null; then
    echo "restart_shard: shard $shard (pid $pid) did not drain within 10s" >&2
    exit 1
fi

# Relaunch: the cmd file backgrounds the server with its output
# redirected to the shard log and refreshes the pid file, so nothing
# here holds the chaos runner's pipes open.
sh "$cmdfile"

port="$(cat "$portfile")"
for _ in $(seq 1 100); do
    if curl -sf "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then
        exit 0
    fi
    sleep 0.1
done
echo "restart_shard: shard $shard did not come back on :$port within 10s" >&2
exit 1
