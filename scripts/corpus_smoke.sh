#!/usr/bin/env bash
# Corpus smoke test: sweep the pinned smoke spec (1000 scenarios, every
# axis covered) with the differential soundness oracle and require
#   1. zero violations and zero generate errors at N workers,
#   2. a byte-identical manifest when the same sweep runs at 1 worker
#      (the determinism contract from docs/CORPUS.md §4),
#   3. that the oracle is live: with -inject-bug the sweep MUST trip
#      violations, otherwise a refactor has short-circuited the check.
set -euo pipefail

cd "$(dirname "$0")/.."
GO="${GO:-go}"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

"$GO" build -o "$workdir/rtmdm-corpus" ./cmd/rtmdm-corpus

workers="${CORPUS_SMOKE_WORKERS:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 4)}"

echo "corpus-smoke: pinned smoke spec, $workers workers"
"$workdir/rtmdm-corpus" -preset smoke -workers "$workers" \
    -manifest "$workdir/manifest-par.txt" -json "$workdir/report.json"

if grep -q '"generate-error"' "$workdir/report.json"; then
    echo "corpus-smoke: smoke spec produced generate errors" >&2
    exit 1
fi

echo "corpus-smoke: same spec, 1 worker (manifest determinism)"
"$workdir/rtmdm-corpus" -preset smoke -workers 1 \
    -manifest "$workdir/manifest-seq.txt" >/dev/null

if ! cmp -s "$workdir/manifest-par.txt" "$workdir/manifest-seq.txt"; then
    echo "corpus-smoke: manifest differs between 1 and $workers workers" >&2
    diff "$workdir/manifest-seq.txt" "$workdir/manifest-par.txt" | head -20 >&2
    exit 1
fi

echo "corpus-smoke: oracle liveness (-inject-bug must trip violations)"
"$workdir/rtmdm-corpus" -preset smoke -count 200 -workers "$workers" -inject-bug

echo "corpus-smoke: OK"
