#!/usr/bin/env bash
# Cluster smoke test: build rtmdm-serve, rtmdm-gateway and
# rtmdm-loadgen, then prove the sharded layer's three headline claims
# end to end (docs/CLUSTER.md):
#
#   1. Scaling — the same seed-deterministic workload against 1 shard
#      and against 4 shards (each pinned to one core via GOMAXPROCS=1)
#      must speed up by at least CLUSTER_SMOKE_MIN_SCALE (default 2.5;
#      override on machines with fewer than ~5 cores).
#   2. Fairness + determinism — two fresh seeded runs with weighted
#      tenants produce byte-identical sorted per-shard admission logs,
#      and the JSON report shows the weight-3 tenant carrying more
#      traffic than the weight-1 tenant.
#   3. Chaos — a third run with seed-driven shard kills (SIGTERM →
#      snapshot → warm restart via restart_shard.sh) still produces the
#      exact same admission log.
#   4. Live resharding — a run that starts with the gateway ringed over
#      2 of 4 shards and grows to 3 then 4 via POST /v1/reshard, under a
#      deterministic lossy transport (-chaos-http), must migrate state
#      with zero lost or duplicated admissions: its admission log is
#      byte-identical to the static-4 run's.
set -euo pipefail

cd "$(dirname "$0")/.."
GO="${GO:-go}"
MIN_SCALE="${CLUSTER_SMOKE_MIN_SCALE:-2.5}"
SEED=7

workdir="$(mktemp -d)"
cleanup() {
    for f in "$workdir"/loadgen.pid "$workdir"/run-*/gateway.pid "$workdir"/run-*/shard-*.pid; do
        if [ -f "$f" ]; then
            kill "$(cat "$f")" 2>/dev/null || true
        fi
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

"$GO" build -o "$workdir/rtmdm-serve" ./cmd/rtmdm-serve
"$GO" build -o "$workdir/rtmdm-gateway" ./cmd/rtmdm-gateway
"$GO" build -o "$workdir/rtmdm-loadgen" ./cmd/rtmdm-loadgen

wait_health() { # url
    for _ in $(seq 1 100); do
        curl -sf "$1/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "cluster_smoke: $1 not healthy within 10s" >&2
    return 1
}

# start_cluster RUNDIR NSHARDS BASEPORT GWPORT [gateway args...]
# Each shard runs under GOMAXPROCS=1 so one shard ≈ one core and the
# scaling comparison measures shards, not scheduler luck. The per-shard
# cmd file is what restart_shard.sh re-executes on a chaos kill.
# GW_SHARDS=N (default NSHARDS) rings the gateway over only the first N
# shards — the reshard phase starts narrow and grows live.
start_cluster() {
    local rundir="$1" nshards="$2" baseport="$3" gwport="$4"
    shift 4
    local gwshards="${GW_SHARDS:-$nshards}"
    mkdir -p "$rundir"
    local urls=""
    for i in $(seq 0 $((nshards - 1))); do
        local port=$((baseport + i))
        echo "$port" >"$rundir/shard-$i.port"
        cat >"$rundir/shard-$i.cmd" <<EOF
GOMAXPROCS=1 "$workdir/rtmdm-serve" -addr 127.0.0.1:$port -workers 1 \
    -admit-window=-1ms -shard-label shard-0$i \
    -snapshot "$rundir/snap-$i.json" \
    >>"$rundir/shard-$i.log" 2>&1 &
echo \$! >"$rundir/shard-$i.pid"
EOF
        sh "$rundir/shard-$i.cmd"
        if [ "$i" -lt "$gwshards" ]; then
            urls="$urls,http://127.0.0.1:$port"
        fi
    done
    urls="${urls#,}"
    for i in $(seq 0 $((nshards - 1))); do
        wait_health "http://127.0.0.1:$((baseport + i))"
    done
    "$workdir/rtmdm-gateway" -addr "127.0.0.1:$gwport" -shards "$urls" \
        -admit-window=-1ms "$@" >>"$rundir/gateway.log" 2>&1 &
    echo $! >"$rundir/gateway.pid"
    wait_health "http://127.0.0.1:$gwport"
}

stop_cluster() { # RUNDIR
    local rundir="$1"
    for f in "$rundir"/gateway.pid "$rundir"/shard-*.pid; do
        if [ -f "$f" ]; then
            kill -TERM "$(cat "$f")" 2>/dev/null || true
        fi
    done
    for f in "$rundir"/gateway.pid "$rundir"/shard-*.pid; do
        [ -f "$f" ] || continue
        local pid
        pid="$(cat "$f")"
        for _ in $(seq 1 100); do
            kill -0 "$pid" 2>/dev/null || break
            sleep 0.1
        done
    done
}

loadgen() { # GWPORT NSHARDS extra args...
    local gwport="$1" nshards="$2"
    shift 2
    "$workdir/rtmdm-loadgen" -cluster -url "http://127.0.0.1:$gwport" \
        -cluster-shards "$nshards" -seed "$SEED" "$@"
}

echo "=== cluster smoke: scaling (1 shard vs 4 shards) ==="
start_cluster "$workdir/run-s1" 1 18210 18300
loadgen 18300 1 -json "$workdir/r1.json"
stop_cluster "$workdir/run-s1"

start_cluster "$workdir/run-s4" 4 18220 18301
loadgen 18301 4 -json "$workdir/r4.json"
stop_cluster "$workdir/run-s4"

rps1="$(jq .total.rps "$workdir/r1.json")"
rps4="$(jq .total.rps "$workdir/r4.json")"
scale="$(awk -v a="$rps4" -v b="$rps1" 'BEGIN { printf "%.2f", a / b }')"
echo "cluster_smoke: 1 shard ${rps1} rps, 4 shards ${rps4} rps — ${scale}x (need ${MIN_SCALE}x)"
awk -v s="$scale" -v m="$MIN_SCALE" 'BEGIN { exit !(s >= m) }' || {
    echo "cluster_smoke: scaling ${scale}x below required ${MIN_SCALE}x" >&2
    exit 1
}

echo "=== cluster smoke: determinism + tenant fairness (two seeded runs) ==="
# A longer probe schedule than the scaling runs, shared by runs a/b/c so
# their admission logs are comparable; the extra ops give the chaos run
# below time to complete at least one kill + warm restart mid-workload.
tenants="gold=3,free=1"
probes=8
start_cluster "$workdir/run-a" 4 18230 18302 -tenants "$tenants"
loadgen 18302 4 -cluster-probes "$probes" -tenants "$tenants" \
    -admit-log "$workdir/log-a" -json "$workdir/ra.json"
stop_cluster "$workdir/run-a"

start_cluster "$workdir/run-b" 4 18240 18303 -tenants "$tenants"
loadgen 18303 4 -cluster-probes "$probes" -tenants "$tenants" \
    -admit-log "$workdir/log-b"
stop_cluster "$workdir/run-b"

if ! diff -u "$workdir/log-a" "$workdir/log-b"; then
    echo "cluster_smoke: admission logs diverged between two seed=$SEED runs" >&2
    exit 1
fi
echo "cluster_smoke: admission logs byte-identical ($(wc -l <"$workdir/log-a") ops)"

gold_req="$(jq '[.tenants[] | select(.tenant == "gold") | .requests] | add' "$workdir/ra.json")"
free_req="$(jq '[.tenants[] | select(.tenant == "free") | .requests] | add' "$workdir/ra.json")"
echo "cluster_smoke: tenant traffic gold=$gold_req free=$free_req (weights 3:1)"
if [ "$gold_req" -le "$free_req" ]; then
    echo "cluster_smoke: weight-3 tenant did not out-carry weight-1 tenant" >&2
    exit 1
fi

echo "=== cluster smoke: chaos (seed-driven shard kills + warm restarts) ==="
start_cluster "$workdir/run-c" 4 18250 18304 -tenants "$tenants" \
    -retries 4 -retry-backoff 100ms -probe-interval 500ms
loadgen 18304 4 -cluster-probes "$probes" -tenants "$tenants" \
    -admit-log "$workdir/log-c" -json "$workdir/rc.json" \
    -chaos-rate 0.5 -chaos-interval 150ms \
    -chaos-cmd "CLUSTER_RUN_DIR='$workdir/run-c' ./scripts/restart_shard.sh {shard}"
stop_cluster "$workdir/run-c"

kills="$(jq '.chaos_kills // 0' "$workdir/rc.json")"
echo "cluster_smoke: chaos killed/restarted $kills shard(s)"
if [ "$kills" -lt 1 ]; then
    echo "cluster_smoke: chaos completed no kill/restart cycle — assertion vacuous" >&2
    exit 1
fi
if ! diff -u "$workdir/log-a" "$workdir/log-c"; then
    echo "cluster_smoke: chaos run diverged from the clean seeded run" >&2
    exit 1
fi
echo "cluster_smoke: chaos run byte-identical to the clean run"

echo "=== cluster smoke: live reshard 2→4 under transport chaos ==="
# Gateway starts ringed over shards 0-1 while all four serve processes
# run; the loadgen mirrors the FINAL 4-shard ring (its per-shard log
# labels must match the post-growth topology). Its transport is the
# deterministic chaos injector: dropped requests, dropped responses
# (duplicate deliveries), latency, tampered bodies, and an asymmetric
# partition window — every fault absorbed by retries and the idempotent
# admission protocol.
GW_SHARDS=2 start_cluster "$workdir/run-r" 4 18260 18305 -tenants "$tenants" \
    -retries 6 -retry-backoff 50ms -probe-interval 500ms
loadgen 18305 4 -cluster-probes "$probes" -tenants "$tenants" \
    -admit-log "$workdir/log-r" -json "$workdir/rr.json" \
    -chaos-http "drop-out=0.03,drop-in=0.03,latency=0.15,latency-ms=25,truncate=0.02,corrupt=0.02,partition=120-160:in" &
echo $! >"$workdir/loadgen.pid"

reshard() { # JSON array of shard URLs
    local code
    for _ in $(seq 1 50); do
        code="$(curl -s -o "$workdir/reshard.json" -w '%{http_code}' \
            -X POST -H 'Content-Type: application/json' \
            -d "{\"shards\": $1}" "http://127.0.0.1:18305/v1/reshard")" || code=000
        [ "$code" = "200" ] && return 0
        sleep 0.2
    done
    echo "cluster_smoke: reshard to $1 failed (last status $code): $(cat "$workdir/reshard.json")" >&2
    return 1
}

sleep 0.4 # let the workload get going before the first growth
reshard '["http://127.0.0.1:18260","http://127.0.0.1:18261","http://127.0.0.1:18262"]'
moved3="$(jq '.moved | length' "$workdir/reshard.json")"
if ! kill -0 "$(cat "$workdir/loadgen.pid")" 2>/dev/null; then
    echo "cluster_smoke: workload finished before the growth completed — live-reshard assertion vacuous" >&2
    exit 1
fi
reshard '["http://127.0.0.1:18260","http://127.0.0.1:18261","http://127.0.0.1:18262","http://127.0.0.1:18263"]'
moved4="$(jq '.moved | length' "$workdir/reshard.json")"
if ! wait "$(cat "$workdir/loadgen.pid")"; then
    echo "cluster_smoke: loadgen failed during the live reshard" >&2
    exit 1
fi
rm -f "$workdir/loadgen.pid"

echo "cluster_smoke: reshards moved $moved3 + $moved4 node(s) live"
if [ "$((moved3 + moved4))" -lt 1 ]; then
    echo "cluster_smoke: no node changed owner across 2→3→4 — assertion vacuous" >&2
    exit 1
fi
epoch="$(curl -sf "http://127.0.0.1:18305/healthz" | jq .epoch)"
if [ "$epoch" != "3" ]; then
    echo "cluster_smoke: gateway epoch $epoch after two reshards, want 3" >&2
    exit 1
fi
curl -sf "http://127.0.0.1:18305/readyz" >/dev/null || {
    echo "cluster_smoke: gateway not ready after the migrations settled" >&2
    exit 1
}
stop_cluster "$workdir/run-r"

if ! diff -u "$workdir/log-a" "$workdir/log-r"; then
    echo "cluster_smoke: live-reshard run diverged from the static-4 run (lost or duplicated admissions)" >&2
    exit 1
fi
echo "cluster_smoke: live-reshard admission log byte-identical to the static-4 run"
echo "cluster_smoke: OK"
