#!/usr/bin/env bash
# Service smoke test: build rtmdm-serve and rtmdm-loadgen, start the
# server on an ephemeral port, run the quick load profile with the 10x
# cache-speedup requirement, then SIGTERM the server and assert it
# drains cleanly. Exercises bind, serve, cache, admission, and shutdown
# end to end. A second server (admission batching disabled so per-request
# latency is visible) then runs the churn profile, asserting the
# incremental analyzer's warm admissions beat the cold fill by 2x.
set -euo pipefail

cd "$(dirname "$0")/.."
GO="${GO:-go}"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

"$GO" build -o "$workdir/rtmdm-serve" ./cmd/rtmdm-serve
"$GO" build -o "$workdir/rtmdm-loadgen" ./cmd/rtmdm-loadgen

addr="127.0.0.1:18099"
"$workdir/rtmdm-serve" -addr "$addr" >"$workdir/serve.log" 2>&1 &
serve_pid=$!
# If the server dies early, fail with its log rather than hanging.
cleanup_server() { kill "$serve_pid" 2>/dev/null || true; }
trap 'cleanup_server; rm -rf "$workdir"' EXIT

"$workdir/rtmdm-loadgen" -url "http://$addr" -quick -min-speedup 10

kill -TERM "$serve_pid"
drained=1
for _ in $(seq 1 100); do
    if ! kill -0 "$serve_pid" 2>/dev/null; then
        drained=0
        break
    fi
    sleep 0.1
done
wait "$serve_pid" 2>/dev/null || true

echo "--- rtmdm-serve log ---"
cat "$workdir/serve.log"

if [ "$drained" -ne 0 ]; then
    echo "smoke: server did not exit within 10s of SIGTERM" >&2
    exit 1
fi
if ! grep -q '^rtmdm-serve: drained$' "$workdir/serve.log"; then
    echo "smoke: server exited without draining" >&2
    exit 1
fi

churn_addr="127.0.0.1:18100"
"$workdir/rtmdm-serve" -addr "$churn_addr" -admit-window=-1ms >"$workdir/serve_churn.log" 2>&1 &
churn_pid=$!
cleanup_server() { kill "$serve_pid" "$churn_pid" 2>/dev/null || true; }

"$workdir/rtmdm-loadgen" -url "http://$churn_addr" -churn -quick -min-warm-speedup 2

kill -TERM "$churn_pid"
wait "$churn_pid" 2>/dev/null || true
echo "smoke: OK"
