// Designspace: size the MCU for a product before committing silicon. The
// explorer sweeps the staging-SRAM partition against the RT-MDM software
// knobs (prefetch depth, preemption granularity δ, DMA chunking) for the
// case-study workload, then reports the Pareto frontier between SRAM cost
// and guaranteed timing margin and recommends the cheapest configuration
// that still leaves 10% of guaranteed rate headroom.
//
//	go run ./examples/designspace
package main

import (
	"fmt"
	"log"

	"rtmdm"
)

func main() {
	plat := rtmdm.DefaultPlatform()
	// The case-study mix: keyword spotting, person detection, anomaly
	// detection — policy-independent, so every grid point re-segments it
	// under its own δ and staging budget.
	spec := rtmdm.WorkloadSpec{Tasks: []rtmdm.WorkloadTaskSpec{
		{Model: "ds-cnn", Seed: 1, Period: 50 * rtmdm.Millisecond, Deadline: 50 * rtmdm.Millisecond},
		{Model: "mobilenetv1-0.25", Seed: 1, Period: 150 * rtmdm.Millisecond, Deadline: 150 * rtmdm.Millisecond},
		{Model: "autoencoder", Seed: 1, Period: 100 * rtmdm.Millisecond, Deadline: 100 * rtmdm.Millisecond},
	}}

	knobs := rtmdm.DefaultDesignKnobs(plat)
	res, err := rtmdm.ExploreDesignSpace(spec, plat, knobs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("design space of the case study on %s: %d configurations, %d schedulable\n\n",
		plat.Name, len(res.Points), res.Schedulable())
	fmt.Println("Pareto frontier (staging SRAM cost vs guaranteed margin α):")
	fmt.Printf("  %-12s %-6s %-8s %-8s %-6s %s\n",
		"staging", "depth", "δ(ms)", "chunk", "α", "worst-case slack")
	for _, p := range res.Frontier {
		chunk := "whole"
		if p.ChunkBytes > 0 {
			chunk = fmt.Sprintf("%dKiB", p.ChunkBytes>>10)
		}
		fmt.Printf("  %-12s %-6d %-8.2f %-8s %-6.2f %.2f ms\n",
			fmt.Sprintf("%d KiB", p.StagingBytes>>10), p.Depth,
			float64(p.GranularityNs)/1e6, chunk, p.Alpha, float64(p.SlackNs)/1e6)
	}

	if best, ok := res.Recommend(1.10); ok {
		fmt.Printf("\nrecommendation (cheapest with α ≥ 1.10): %d KiB staging, depth %d, δ %.2f ms\n",
			best.StagingBytes>>10, best.Depth, float64(best.GranularityNs)/1e6)
		fmt.Println("\nreading: every KiB moved into the staging partition is a KiB taken")
		fmt.Println("from activations, so the frontier is the exact menu a hardware/software")
		fmt.Println("co-design meeting chooses from — the explorer prices each point with")
		fmt.Println("the same sound analysis that certifies the final deployment.")
	} else {
		fmt.Println("\nno schedulable configuration — widen the grid or lower the load")
	}
}
