// Quickstart: build a three-DNN always-on sensing workload, obtain the
// offline schedulability guarantee, and watch it run in virtual time.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rtmdm"
)

func main() {
	plat := rtmdm.DefaultPlatform()
	pol := rtmdm.RTMDM()

	// A keyword spotter every 50 ms, a person detector every 150 ms, and
	// an acoustic anomaly detector every 100 ms — the workload mix the
	// paper's introduction motivates.
	set, err := rtmdm.NewSystem(plat, pol).
		AddTask("kws", "ds-cnn", 50*rtmdm.Millisecond).
		AddTask("persondet", "mobilenetv1-0.25", 150*rtmdm.Millisecond).
		AddTask("anomaly", "autoencoder", 100*rtmdm.Millisecond).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("platform: %s (%s, %s)\n", plat.Name, plat.CPU.Name, plat.Mem.Name)
	fmt.Printf("policy:   %s (depth %d, δ %.1f ms)\n\n", pol.Name, pol.Depth,
		float64(pol.MaxSegNs)/1e6)

	// Offline guarantee: the RT-MDM response-time analysis.
	verdict, err := rtmdm.Analyze(set, plat, pol)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline verdict (%s): schedulable = %v\n", verdict.Test, verdict.Schedulable)
	for _, t := range set.ByPriority() {
		fmt.Printf("  %-10s prio %d  period %-8v WCRT bound %-10v (deadline %v)\n",
			t.Name, t.Priority, t.Period, verdict.WCRT[t.Name], t.Deadline)
	}

	// Runtime: one virtual second on the simulated MCU.
	res, err := rtmdm.Simulate(set, plat, pol, rtmdm.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated 1 s of virtual time (%d trace events):\n", res.Trace.Len())
	fmt.Printf("  CPU busy %.1f%%  DMA busy %.1f%%  staged-SRAM peak %d B\n",
		100*res.CPUUtilization(), 100*res.DMAUtilization(), res.SRAMPeak)
	for _, t := range set.ByPriority() {
		tm := res.Metrics.PerTask[t.Name]
		fmt.Printf("  %-10s %3d jobs  max response %-10v avg %-10v misses %d\n",
			t.Name, tm.Completed, tm.MaxResponse, tm.AvgResponse(), tm.Misses)
	}
	if res.Metrics.AnyMiss() {
		fmt.Println("\nDEADLINE MISS — this should not happen for a set the analysis accepted")
	} else {
		fmt.Println("\nall deadlines met, as the analysis guaranteed")
	}
}
