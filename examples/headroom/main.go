// Headroom: quantify how much timing margin each scheduling policy leaves
// on the case-study workload, via the classic breakdown metric — the
// largest factor α by which every task's rate could be multiplied before
// the offline guarantee breaks.
//
//	go run ./examples/headroom
package main

import (
	"fmt"
	"log"

	"rtmdm"
)

func main() {
	plat := rtmdm.DefaultPlatform()
	fmt.Printf("breakdown factor α on %s (kws@50ms + persondet@150ms + anomaly@100ms)\n\n", plat.Name)
	fmt.Printf("%-16s %-10s %-42s\n", "policy", "α", "meaning")
	for _, pol := range []rtmdm.Policy{
		rtmdm.SerialNPFP(), rtmdm.SerialSegFP(), rtmdm.RTMDM(),
		rtmdm.RTMDMDepth(4), rtmdm.RTMDMFIFODMA(),
	} {
		set, err := rtmdm.NewSystem(plat, pol).
			AddTask("kws", "ds-cnn", 50*rtmdm.Millisecond).
			AddTask("persondet", "mobilenetv1-0.25", 150*rtmdm.Millisecond).
			AddTask("anomaly", "autoencoder", 100*rtmdm.Millisecond).
			Build()
		if err != nil {
			log.Fatal(err)
		}
		alpha, err := rtmdm.Breakdown(set, plat, pol, 0.01)
		if err != nil {
			fmt.Printf("%-16s %-10s %s\n", pol.Name, "-", err)
			continue
		}
		meaning := "guaranteed only below the given rates"
		if alpha >= 1 {
			meaning = fmt.Sprintf("all rates could rise %.0f%% and stay guaranteed", 100*(alpha-1))
		}
		fmt.Printf("%-16s %-10.2f %s\n", pol.Name, alpha, meaning)
	}
	fmt.Println("\nreading: the margin each policy leaves is the budget a product team")
	fmt.Println("spends on faster sensing rates or extra models. The vanilla runtime")
	fmt.Println("cannot even guarantee the nominal rates (α < 1); RT-MDM guarantees")
	fmt.Println("them with ~43% to spare on the same silicon.")
}
