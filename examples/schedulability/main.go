// Schedulability study: generate random multi-DNN workloads across a
// utilization sweep and compare the offline acceptance of the three main
// policies — a miniature of the paper's headline figure, runnable in
// seconds.
//
//	go run ./examples/schedulability
package main

import (
	"fmt"
	"log"

	"rtmdm"
)

func main() {
	plat := rtmdm.DefaultPlatform()
	policies := rtmdm.ComparisonSet()
	const setsPerPoint = 40
	const tasksPerSet = 4

	fmt.Printf("random %d-task sets on %s, %d sets per point\n\n", tasksPerSet, plat.Name, setsPerPoint)
	fmt.Printf("%-6s", "util")
	for _, p := range policies {
		fmt.Printf("  %-14s", p.Name)
	}
	fmt.Println()

	for _, u := range []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		fmt.Printf("%-6.1f", u)
		for _, pol := range policies {
			accepted := 0
			for k := 0; k < setsPerPoint; k++ {
				spec, err := rtmdm.GenerateWorkload(rtmdm.WorkloadParams{
					Seed:     int64(k)*7907 + int64(u*1000),
					N:        tasksPerSet,
					Util:     u,
					Platform: plat,
				})
				if err != nil {
					log.Fatal(err)
				}
				set, err := spec.Instantiate(plat, pol)
				if err != nil {
					continue
				}
				v, err := rtmdm.Analyze(set, plat, pol)
				if err == nil && v.Schedulable {
					accepted++
				}
			}
			fmt.Printf("  %-14s", fmt.Sprintf("%.0f%%", 100*float64(accepted)/setsPerPoint))
		}
		fmt.Println()
	}

	fmt.Println("\nreading: whole-job non-preemption collapses early (a single slow DNN")
	fmt.Println("job blocks every deadline beneath it); segment preemption recovers most")
	fmt.Println("sets; RT-MDM's prefetch pipeline adds the final margin by removing the")
	fmt.Println("external-memory stall time from every job's demand.")
}
