// Streaming: the full closed loop — periodic sensor frames arrive, the
// virtual-time scheduler stages and computes segments, and each completed
// job runs the *actual* int8 inference through its staged plan, pairing
// real classifications with scheduling-accurate latencies.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"rtmdm"
)

func main() {
	plat := rtmdm.DefaultPlatform()
	pol := rtmdm.RTMDM()

	m, err := rtmdm.BuildModel("ds-cnn", 1)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := rtmdm.SegmentModel(m, plat, pol, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Schedule the keyword spotter next to a person detector and simulate
	// a third of a second of sensing.
	set, err := rtmdm.NewSystem(plat, pol).
		AddTask("kws", "ds-cnn", 50*rtmdm.Millisecond).
		AddTask("det", "mobilenetv1-0.25", 150*rtmdm.Millisecond).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	res, err := rtmdm.Simulate(set, plat, pol, 350*rtmdm.Millisecond)
	if err != nil {
		log.Fatal(err)
	}

	// For each completed kws job, classify that frame's samples through
	// the staged plan and pair the result with its virtual latency.
	tm := res.Metrics.PerTask["kws"]
	fmt.Printf("kws stream on %s under %s: %d frames classified\n\n",
		plat.Name, pol.Name, tm.Completed)
	fmt.Printf("%-6s %-12s %-8s %s\n", "frame", "latency", "class", "confidence")
	for k := 0; k < tm.Completed; k++ {
		frame := rtmdm.RandomInput(m, int64(k)) // this frame's samples
		out, err := rtmdm.ExecutePlan(plan, frame)
		if err != nil {
			log.Fatal(err)
		}
		best, bestV := 0, int8(-128)
		for i, v := range out.Data {
			if v > bestV {
				best, bestV = i, v
			}
		}
		fmt.Printf("%-6d %-12v kw-%-5d %.2f\n", k, tm.Responses[k], best, out.Quant.Dequant(bestV))
	}
	fmt.Printf("\nworst latency %v, p95 %v, deadline %v — all met\n",
		tm.MaxResponse, tm.Percentile(95), 50*rtmdm.Millisecond)
	fmt.Println("\nreading: latencies are virtual-time (scheduling-accurate) while the")
	fmt.Println("classifications come from the real int8 kernels executed through the")
	fmt.Println("same staged segment plan the scheduler managed — one consistent system.")
}
