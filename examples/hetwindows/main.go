// Hetwindows: spend prefetch depth only where it pays. A task's buffer
// window is analytically free at the top priority (it blocks nobody and
// earns the pipelined-demand credit) and pure blocking inventory anywhere
// else — so heterogeneous windows certify the same case study with far
// less staging SRAM than any uniform depth.
//
//	go run ./examples/hetwindows
package main

import (
	"fmt"
	"log"

	"rtmdm"
)

func main() {
	plat := rtmdm.DefaultPlatform()

	build := func(pol rtmdm.Policy) *rtmdm.TaskSet {
		set, err := rtmdm.NewSystem(plat, pol).
			AddTask("kws", "ds-cnn", 50*rtmdm.Millisecond).
			AddTask("persondet", "mobilenetv1-0.25", 150*rtmdm.Millisecond).
			AddTask("anomaly", "autoencoder", 100*rtmdm.Millisecond).
			Build()
		if err != nil {
			log.Fatal(err)
		}
		return set
	}
	staging := func(set *rtmdm.TaskSet, pol rtmdm.Policy) int64 {
		var need int64
		for _, t := range set.Tasks {
			d := pol.DepthFor(t.Name)
			if d > t.NumSegments() {
				d = t.NumSegments()
			}
			need += int64(d) * t.Plan.MaxLoadBytes()
		}
		return need
	}

	fmt.Printf("prefetch-window assignments on %s (kws@50ms ≻ anomaly@100ms ≻ persondet@150ms)\n\n", plat.Name)
	fmt.Printf("%-26s %-22s %-14s %s\n", "policy", "windows (kws/anom/det)", "staging need", "worst kws bound")
	for _, cfg := range []struct {
		label string
		pol   rtmdm.Policy
	}{
		{"uniform depth 2", rtmdm.RTMDM()},
		{"uniform depth 4", rtmdm.RTMDMDepth(4)},
		{"tuned heterogeneous", rtmdm.RTMDMPerTaskDepth(map[string]int{
			"kws": 3, "anomaly": 1, "persondet": 1,
		})},
	} {
		// Hold the segmentation fixed (the depth-2 reference) so only the
		// window assignment differs.
		set := build(rtmdm.RTMDM())
		v, err := rtmdm.Analyze(set, plat, cfg.pol)
		if err != nil {
			log.Fatal(err)
		}
		verdictStr := "REJECTED"
		if v.Schedulable {
			//lint:allow millitime -- ms formatting at the report boundary
			verdictStr = fmt.Sprintf("%.2f ms", float64(v.WCRT["kws"])/1e6)
		}
		fmt.Printf("%-26s %d/%d/%d                  %4d KiB       %s\n",
			cfg.label,
			cfg.pol.DepthFor("kws"), cfg.pol.DepthFor("anomaly"), cfg.pol.DepthFor("persondet"),
			staging(set, cfg.pol)>>10, verdictStr)
	}

	fmt.Println("\nreading: the keyword spotter is the most urgent task, so its window is")
	fmt.Println("the only one that buys guaranteed latency — everyone else's window is")
	fmt.Println("inventory that can block it. Tuned windows keep the certificate while")
	fmt.Println("releasing staging SRAM back to activations (see EXPERIMENTS.md T24).")
}
