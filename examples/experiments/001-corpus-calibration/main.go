// Experiment 001: calibrate the generative corpus axes.
//
// Sweeps each candidate utilization level against each policy family
// with single-axis-pinned sub-specs and reports the analysis verdict
// mix, so the corpus defaults (corpus.DefaultSpec) can be chosen to
// straddle the schedulability boundary instead of clustering in the
// trivially-feasible or trivially-infeasible regimes. Analysis-only:
// the differential oracle's simulations are not needed to place the
// boundary, so the sweep stays fast enough to iterate on.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"rtmdm/internal/analysis"
	"rtmdm/internal/corpus"
)

func main() {
	var (
		per     = flag.Int("per", 120, "scenarios per (util, policy) cell")
		seed    = flag.Int64("seed", 1, "corpus seed")
		verbose = flag.Bool("v", false, "per-cell generate-error detail")
	)
	flag.Parse()

	utils := []float64{0.2, 0.3, 0.45, 0.6, 0.75, 0.9, 1.1}
	policies := []string{"rt-mdm", "rt-mdm-d3", "rt-mdm-d4", "serial-segfp", "serial-npfp", "rt-mdm-edf"}

	fmt.Printf("%-14s", "policy \\ util")
	for _, u := range utils {
		fmt.Printf("  %6.2f", u)
	}
	fmt.Println("\n(cell = schedulable fraction of analyzable instances; '-' = no sound test)")

	ctx := context.Background()
	for _, pol := range policies {
		fmt.Printf("%-14s", pol)
		for _, u := range utils {
			spec := corpus.DefaultSpec()
			spec.Seed = *seed
			spec.Count = *per
			spec.Utils = []float64{u}
			spec.Policies = []string{pol}
			spec.FaultProfiles = []string{"none"}
			spec.HorizonsMs = []float64{200}
			gen, err := corpus.NewGenerator(spec)
			if err != nil {
				fmt.Fprintln(os.Stderr, "calibration:", err)
				os.Exit(1)
			}
			sched, analyzed, genErrs := 0, 0, 0
			for i := 0; i < gen.Count(); i++ {
				it, err := gen.At(i)
				if err != nil {
					genErrs++
					continue
				}
				v, err := analysis.EvaluateScenario(ctx, it.Scenario)
				if err != nil {
					continue // no sound test for this policy
				}
				analyzed++
				if v.Schedulable {
					sched++
				}
			}
			if analyzed == 0 {
				fmt.Printf("  %6s", "-")
			} else {
				fmt.Printf("  %5.0f%%", 100*float64(sched)/float64(analyzed))
			}
			if *verbose && genErrs > 0 {
				fmt.Fprintf(os.Stderr, "  [%s u=%.2f: %d/%d generate errors]\n", pol, u, genErrs, gen.Count())
			}
		}
		fmt.Println()
	}
}
