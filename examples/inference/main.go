// Inference: exercise the quantized NN substrate directly — run a real
// int8 forward pass of a zoo model, then show how RT-MDM would stage the
// same model through SRAM (the segment plan and its pipeline economics).
//
//	go run ./examples/inference [model]
package main

import (
	"fmt"
	"log"
	"os"

	"rtmdm"
)

func main() {
	name := "ds-cnn"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	m, err := rtmdm.BuildModel(name, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: input %v, %d layers, %.1f KiB parameters, %.2f M MACs\n",
		m.Name, m.Input, m.NumLayers(),
		float64(m.TotalParamBytes())/1024, float64(m.TotalMACs())/1e6)

	// A real int8 forward pass (synthetic weights, pseudo-random input).
	x := rtmdm.RandomInput(m, 7)
	y := m.Forward(x)
	fmt.Printf("\nforward pass: output %v\n", y.Shape)
	n := y.Shape.Elems()
	if n > 12 {
		n = 12
	}
	for i := 0; i < n; i++ {
		fmt.Printf("  out[%2d] = %4d  (≈ %+.4f)\n", i, y.Data[i], y.Quant.Dequant(y.Data[i]))
	}

	// Determinism check: the same input always yields the same output.
	y2 := m.Forward(rtmdm.RandomInput(m, 7))
	for i := range y.Data {
		if y.Data[i] != y2.Data[i] {
			log.Fatal("forward pass is not deterministic")
		}
	}
	fmt.Println("  (bit-identical across repeated runs)")

	// The scheduling view of the same model: its staged segment plan when
	// deployed as one of three co-resident tasks under RT-MDM.
	plat := rtmdm.DefaultPlatform()
	pol := rtmdm.RTMDM()
	pl, err := rtmdm.SegmentModel(m, plat, pol, 3)
	if err != nil {
		log.Fatal(err)
	}
	// Staged execution through the plan is bit-identical to the whole
	// model — the property that licenses scheduling at segment granularity.
	pl2, err := rtmdm.SegmentModel(m, rtmdm.DefaultPlatform(), rtmdm.RTMDM(), 3)
	if err != nil {
		log.Fatal(err)
	}
	staged, err := rtmdm.ExecutePlan(pl2, rtmdm.RandomInput(m, 7))
	if err != nil {
		log.Fatal(err)
	}
	for i := range y.Data {
		if staged.Data[i] != y.Data[i] {
			log.Fatal("staged execution diverged from whole-model inference")
		}
	}
	fmt.Printf("\nstaged (segment-by-segment) execution: bit-identical across %d segments\n",
		pl2.NumSegments())

	fmt.Printf("\nstaging plan on %s (one of 3 tasks, budget %d KiB, δ %.1f ms):\n",
		plat.Name, pl.BudgetBytes>>10, float64(pol.MaxSegNs)/1e6)
	fmt.Printf("  %d segments; largest load %d B, largest compute %.3f ms\n",
		pl.NumSegments(), pl.MaxLoadBytes(), float64(pl.MaxComputeNs())/1e6)
	fmt.Printf("  serial (load-then-compute) job length: %.3f ms\n", float64(pl.SerialNs())/1e6)
	fmt.Printf("  pipelined (double-buffered) job length: %.3f ms → %.2fx\n",
		float64(pl.PipelineNs(pol.Depth))/1e6,
		float64(pl.SerialNs())/float64(pl.PipelineNs(pol.Depth)))
}
