// Timeline: visualize what RT-MDM actually changes on the wire — render
// ASCII Gantt charts of the same two-DNN workload under the serial
// non-preemptive baseline and under RT-MDM, side by side.
//
//	go run ./examples/timeline
package main

import (
	"fmt"
	"log"
	"os"

	"rtmdm"
)

func main() {
	plat := rtmdm.DefaultPlatform()
	for _, pol := range []rtmdm.Policy{rtmdm.SerialNPFP(), rtmdm.RTMDM()} {
		set, err := rtmdm.NewSystem(plat, pol).
			AddTask("kws", "ds-cnn", 50*rtmdm.Millisecond).
			AddTask("anomaly", "autoencoder", 100*rtmdm.Millisecond).
			Build()
		if err != nil {
			log.Fatal(err)
		}
		res, err := rtmdm.Simulate(set, plat, pol, 300*rtmdm.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", pol.Name)
		if err := rtmdm.RenderTimeline(os.Stdout, res, 0, 100*rtmdm.Millisecond, 110); err != nil {
			log.Fatal(err)
		}
		kws := res.Metrics.PerTask["kws"]
		an := res.Metrics.PerTask["anomaly"]
		fmt.Printf("kws max response %v, anomaly max response %v\n\n", kws.MaxResponse, an.MaxResponse)
	}
	fmt.Println("reading: under the serial baseline the CPU idles (dots) whenever the")
	fmt.Println("DMA streams parameters, and the urgent keyword spotter waits behind the")
	fmt.Println("whole anomaly job. Under RT-MDM the lowercase (DMA) lane runs *underneath*")
	fmt.Println("the uppercase (CPU) lane — loads hide behind computes — and preemption")
	fmt.Println("happens at segment boundaries.")
}
