// Multi-DNN policy comparison: the case-study workload under every
// scheduling policy, at nominal load and then pushed into overload, showing
// where each baseline breaks and RT-MDM holds.
//
//	go run ./examples/multidnn
package main

import (
	"fmt"
	"log"

	"rtmdm"
)

func buildSet(pol rtmdm.Policy, scale float64) (*rtmdm.TaskSet, error) {
	plat := rtmdm.DefaultPlatform()
	p := func(ms float64) rtmdm.Duration {
		//lint:allow millitime -- example-setup boundary: small literal ms values scaled once
		return rtmdm.Duration(ms * scale * float64(rtmdm.Millisecond))
	}
	return rtmdm.NewSystem(plat, pol).
		AddTask("kws", "ds-cnn", p(50)).
		AddTask("persondet", "mobilenetv1-0.25", p(150)).
		AddTask("anomaly", "autoencoder", p(100)).
		Build()
}

func main() {
	plat := rtmdm.DefaultPlatform()
	policies := []rtmdm.Policy{
		rtmdm.SerialNPFP(), rtmdm.SerialSegFP(),
		rtmdm.RTMDM(), rtmdm.RTMDMEDF(), rtmdm.RTMDMFIFODMA(),
	}

	for _, scenario := range []struct {
		label string
		scale float64 // period multiplier: < 1 squeezes the load up
	}{
		{"nominal load (U ≈ 0.53)", 1.0},
		{"squeezed periods ×0.55 (U ≈ 0.97)", 0.55},
	} {
		fmt.Printf("== %s ==\n", scenario.label)
		fmt.Printf("%-16s %-8s %-12s %-12s %-12s %-8s\n",
			"policy", "verdict", "kws-max", "det-max", "anom-max", "misses")
		for _, pol := range policies {
			set, err := buildSet(pol, scenario.scale)
			if err != nil {
				log.Fatal(err)
			}
			verdict := "n/a"
			if v, err := rtmdm.Analyze(set, plat, pol); err == nil {
				verdict = fmt.Sprintf("%v", v.Schedulable)
			}
			res, err := rtmdm.Simulate(set, plat, pol, 900*rtmdm.Millisecond)
			if err != nil {
				log.Fatal(err)
			}
			misses := 0
			for _, tm := range res.Metrics.PerTask {
				misses += tm.Misses
			}
			get := func(name string) rtmdm.Duration {
				return res.Metrics.PerTask[name].MaxResponse
			}
			fmt.Printf("%-16s %-8s %-12v %-12v %-12v %-8d\n",
				pol.Name, verdict, get("kws"), get("persondet"), get("anomaly"), misses)
		}
		fmt.Println()
	}
	fmt.Println("reading: under overload the whole-job non-preemptive baseline lets a")
	fmt.Println("45 ms ResNet-class job block the 27 ms keyword-spotting deadline;")
	fmt.Println("RT-MDM's segment preemption plus load/compute overlap keeps the urgent")
	fmt.Println("task's response flat while the offline analysis tracks exactly which")
	fmt.Println("configurations remain guaranteed.")
}
