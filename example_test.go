package rtmdm_test

import (
	"fmt"

	"rtmdm"
)

// ExampleNewSystem shows the canonical flow: assemble a multi-DNN task
// set, obtain the offline guarantee, then watch it run in virtual time.
func ExampleNewSystem() {
	plat := rtmdm.DefaultPlatform()
	pol := rtmdm.RTMDM()
	set, err := rtmdm.NewSystem(plat, pol).
		AddTask("kws", "ds-cnn", 50*rtmdm.Millisecond).
		AddTask("anomaly", "autoencoder", 100*rtmdm.Millisecond).
		Build()
	if err != nil {
		panic(err)
	}
	verdict, err := rtmdm.Analyze(set, plat, pol)
	if err != nil {
		panic(err)
	}
	result, err := rtmdm.Simulate(set, plat, pol, 500*rtmdm.Millisecond)
	if err != nil {
		panic(err)
	}
	fmt.Println("schedulable:", verdict.Schedulable)
	fmt.Println("misses:", result.Metrics.AnyMiss())
	// Output:
	// schedulable: true
	// misses: false
}

// ExampleBuildModel runs a real int8 inference through a zoo model.
func ExampleBuildModel() {
	m, err := rtmdm.BuildModel("lenet5", 1)
	if err != nil {
		panic(err)
	}
	y := m.Forward(rtmdm.RandomInput(m, 7))
	fmt.Println("output classes:", y.Shape.C)
	// Output:
	// output classes: 10
}

// ExampleExecutePlan demonstrates that staged, segment-by-segment
// execution reproduces whole-model inference exactly.
func ExampleExecutePlan() {
	m, _ := rtmdm.BuildModel("tinymlp", 1)
	plan, err := rtmdm.SegmentModel(m, rtmdm.DefaultPlatform(), rtmdm.RTMDM(), 4)
	if err != nil {
		panic(err)
	}
	x := rtmdm.RandomInput(m, 3)
	whole := m.Forward(x)
	staged, err := rtmdm.ExecutePlan(plan, x)
	if err != nil {
		panic(err)
	}
	identical := true
	for i := range whole.Data {
		if staged.Data[i] != whole.Data[i] {
			identical = false
		}
	}
	fmt.Println("bit-identical:", identical)
	// Output:
	// bit-identical: true
}

// ExampleGenerateWorkload draws a random deployable task set and checks it
// offline.
func ExampleGenerateWorkload() {
	plat := rtmdm.DefaultPlatform()
	spec, err := rtmdm.GenerateWorkload(rtmdm.WorkloadParams{
		Seed: 42, N: 3, Util: 0.3, Platform: plat,
	})
	if err != nil {
		panic(err)
	}
	set, err := spec.Instantiate(plat, rtmdm.RTMDM())
	if err != nil {
		panic(err)
	}
	v, err := rtmdm.Analyze(set, plat, rtmdm.RTMDM())
	if err != nil {
		panic(err)
	}
	fmt.Println("tasks:", len(set.Tasks), "schedulable:", v.Schedulable)
	// Output:
	// tasks: 3 schedulable: true
}
