// Command rtmdm-sched sweeps schedulability over random multi-DNN task
// sets: for each utilization point it generates sets, runs each policy's
// offline analysis and (optionally) the empirical simulation, and prints
// acceptance/miss fractions.
//
// Usage:
//
//	rtmdm-sched -umin 0.2 -umax 1.0 -step 0.1 -n 4 -sets 200 \
//	            -policies serial-npfp,serial-segfp,rt-mdm [-empirical]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rtmdm/internal/analysis"
	"rtmdm/internal/core"
	"rtmdm/internal/cost"
	"rtmdm/internal/exec"
	"rtmdm/internal/sim"
	"rtmdm/internal/workload"
)

func main() {
	var (
		umin      = flag.Float64("umin", 0.2, "minimum utilization")
		umax      = flag.Float64("umax", 1.0, "maximum utilization")
		step      = flag.Float64("step", 0.1, "utilization step")
		n         = flag.Int("n", 4, "tasks per set")
		sets      = flag.Int("sets", 100, "task sets per point")
		seed      = flag.Int64("seed", 20240601, "random seed")
		platName  = flag.String("platform", "stm32h743", "platform preset")
		polNames  = flag.String("policies", "serial-npfp,serial-segfp,rt-mdm", "comma-separated policies")
		empirical = flag.Bool("empirical", false, "also simulate and report sets with misses")
		breakdown = flag.Bool("breakdown", false, "report mean breakdown factor α per policy")
		horizonMs = flag.Int64("horizon", 400, "empirical horizon cap in ms")
	)
	flag.Parse()

	plat, err := cost.PlatformByName(*platName)
	if err != nil {
		fatal(err)
	}
	var pols []core.Policy
	for _, pn := range strings.Split(*polNames, ",") {
		p, err := core.PolicyByName(strings.TrimSpace(pn))
		if err != nil {
			fatal(err)
		}
		pols = append(pols, p)
	}

	fmt.Printf("%-6s", "util")
	for _, p := range pols {
		fmt.Printf("  %-14s", p.Name)
		if *empirical {
			fmt.Printf("  %-14s", p.Name+"(sim)")
		}
		if *breakdown {
			fmt.Printf("  %-14s", p.Name+"(α)")
		}
	}
	fmt.Println()

	for u := *umin; u <= *umax+1e-9; u += *step {
		fmt.Printf("%-6.2f", u)
		for _, pol := range pols {
			acc, missSets := 0, 0
			alphaSum, alphaN := 0.0, 0
			for k := 0; k < *sets; k++ {
				spec, err := workload.Generate(workload.Params{
					Seed: *seed + int64(k)*7907 + int64(u*1000)*13, N: *n,
					Util: u, Platform: plat,
				})
				if err != nil {
					fatal(err)
				}
				set, err := spec.Instantiate(plat, pol)
				if err != nil {
					missSets++
					continue
				}
				schedulable := false
				if core.Provision(set, plat, pol) == nil {
					if test, err := analysis.ForPolicy(pol); err == nil {
						schedulable = test(set, plat).Schedulable
						if *breakdown {
							alphaSum += analysis.BreakdownFactor(set, plat, test, 0.02)
							alphaN++
						}
					}
				}
				if schedulable {
					acc++
				}
				if *empirical {
					r, err := exec.Run(set, plat, pol, core.SatMulTime(sim.Millisecond, *horizonMs))
					if err != nil {
						fatal(err)
					}
					if r.Metrics.AnyMiss() {
						missSets++
					}
				}
			}
			fmt.Printf("  %-14s", fmt.Sprintf("%.1f%%", 100*float64(acc)/float64(*sets)))
			if *empirical {
				fmt.Printf("  %-14s", fmt.Sprintf("%.1f%%", 100*float64(missSets)/float64(*sets)))
			}
			if *breakdown {
				if alphaN > 0 {
					fmt.Printf("  %-14s", fmt.Sprintf("%.2f", alphaSum/float64(alphaN)))
				} else {
					fmt.Printf("  %-14s", "-")
				}
			}
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtmdm-sched:", err)
	os.Exit(1)
}
