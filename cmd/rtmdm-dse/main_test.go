package main

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// stopJoinWriter proves the ticker goroutine has exited before stop
// returns: every write after join is flagged as a race survivor.
type stopJoinWriter struct {
	mu     sync.Mutex
	sb     strings.Builder
	joined bool
	late   bool
	writes int
}

func (w *stopJoinWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.joined {
		w.late = true
	}
	w.writes++
	return w.sb.Write(p)
}

func (w *stopJoinWriter) markJoined() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.joined = true
}

// TestProgressTickerStopJoinsAndIsIdempotent is the regression test for the
// ticker leak: stop must wait for the reporting goroutine (no write can land
// after stop returns) and must be safe to call from every return path,
// including twice (explicit call + deferred cleanup).
func TestProgressTickerStopJoinsAndIsIdempotent(t *testing.T) {
	w := &stopJoinWriter{}
	cb, stop := progressTicker(w)
	cb(3, 7)

	done := make(chan struct{})
	go func() {
		defer close(done)
		stop()
		w.markJoined()
		stop() // second call: deferred cleanup after the explicit one
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stop did not return — ticker goroutine not joined")
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.late {
		t.Fatal("ticker goroutine wrote after stop returned")
	}
	out := w.sb.String()
	if n := strings.Count(out, "points in"); n != 1 {
		t.Fatalf("final tally printed %d times, want 1:\n%q", n, out)
	}
	if !strings.Contains(out, "3/7") {
		t.Fatalf("final tally missing progress counts:\n%q", out)
	}
}

// TestProgressTickerSilentBeforeFirstCallback pins the zero-total guard:
// stopping a ticker that never saw progress must not print a bogus "0/0"
// tally (the early-error path in main).
func TestProgressTickerSilentBeforeFirstCallback(t *testing.T) {
	w := &stopJoinWriter{}
	_, stop := progressTicker(w)
	stop()
	stop()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.writes != 0 {
		t.Fatalf("ticker wrote %d times with no progress reported:\n%q", w.writes, w.sb.String())
	}
}
