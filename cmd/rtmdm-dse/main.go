// Command rtmdm-dse explores the hardware/software design space of an
// RT-MDM deployment: it sweeps the staging-SRAM partition, prefetch depth,
// preemption granularity δ and DMA chunk size over a workload, runs the
// full offline pipeline at every grid point, and reports the Pareto
// frontier between staging cost and guaranteed timing margin plus a
// recommended configuration.
//
// Usage:
//
//	rtmdm-dse -n 4 -util 0.6 [-platform stm32h743] [-alpha 1.1]
//	rtmdm-dse -scenario deploy.json -staging 64,128,192 -delta 0.5,1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rtmdm/internal/core"
	"rtmdm/internal/cost"
	"rtmdm/internal/dse"
	"rtmdm/internal/exec"
	"rtmdm/internal/metrics"
	"rtmdm/internal/scenario"
	"rtmdm/internal/sim"
	"rtmdm/internal/workload"
)

func main() {
	var (
		platName = flag.String("platform", "stm32h743", "platform preset")
		scenPath = flag.String("scenario", "", "scenario JSON describing the workload (overrides -n/-util)")
		n        = flag.Int("n", 4, "tasks in the synthetic workload")
		util     = flag.Float64("util", 0.6, "target utilization of the synthetic workload")
		seed     = flag.Int64("seed", 20240601, "random seed for the synthetic workload")
		staging  = flag.String("staging", "", "staging partition candidates in KiB, comma-separated (default: platform-derived)")
		depths   = flag.String("depths", "", "prefetch depth candidates (default 2,3,4)")
		deltas   = flag.String("delta", "", "granularity δ candidates in ms (default 0.25,0.5,1,2)")
		chunks   = flag.String("chunks", "", "DMA chunk candidates in KiB, 0 = whole segment (default 0,8)")
		alpha    = flag.Float64("alpha", 1.1, "target breakdown factor for the recommendation")
		verbose  = flag.Bool("v", false, "print every grid point, not just the frontier")
		simMs    = flag.Int64("simulate", 0, "cross-check the recommendation empirically for this many ms (0 = off)")
		het      = flag.Bool("het", false, "also tune per-task prefetch windows at every staging/δ/chunk combination")
		csvOut   = flag.Bool("csv", false, "emit the grid as CSV")
		progress = flag.Bool("progress", true, "report sweep progress (points/sec, ETA) on stderr")
		showMet  = flag.Bool("metrics", false, "dump the exploration metrics snapshot as JSON on stderr")
	)
	flag.Parse()

	plat, err := cost.PlatformByName(*platName)
	if err != nil {
		fatal(err)
	}
	spec, desc, err := buildSpec(*scenPath, plat, *n, *util, *seed)
	if err != nil {
		fatal(err)
	}
	knobs, err := buildKnobs(plat, *staging, *depths, *deltas, *chunks)
	if err != nil {
		fatal(err)
	}
	knobs.TunePerTaskDepth = *het

	if *showMet {
		reg := metrics.NewRegistry()
		dse.Instrument(reg)
		workload.Instrument(reg)
		exec.Instrument(reg) // the -simulate cross-check runs the executor
		// Deferred so the snapshot also covers the -simulate cross-check.
		defer func() {
			fmt.Fprintln(os.Stderr, "metrics:")
			if err := reg.Snapshot().WriteJSON(os.Stderr); err != nil {
				fatal(err)
			}
		}()
	}
	stopTicker := func() {}
	if *progress {
		knobs.Progress, stopTicker = progressTicker(os.Stderr)
		defer stopTicker() // idempotent; covers panics in Explore
	}
	res, err := dse.Explore(spec, plat, knobs)
	stopTicker()
	if err != nil {
		fatal(err)
	}

	if *csvOut {
		emitCSV(res)
		return
	}
	fmt.Printf("workload: %s on %s — %d grid points, %d schedulable\n\n",
		desc, plat.Name, len(res.Points), res.Schedulable())
	if *verbose {
		fmt.Println("grid:")
		for _, p := range res.Points {
			fmt.Printf("  %s\n", describe(p))
		}
		fmt.Println()
	}
	if len(res.Frontier) == 0 {
		fmt.Println("no schedulable configuration on the grid — widen the knobs or lower the load")
		os.Exit(2)
	}
	fmt.Println("Pareto frontier (staging cost vs guaranteed margin):")
	for _, p := range res.Frontier {
		fmt.Printf("  %s\n", describe(p))
	}
	if best, ok := res.Recommend(*alpha); ok {
		fmt.Printf("\nrecommended (target α ≥ %.2f):\n  %s\n", *alpha, describe(best))
		if *simMs > 0 {
			if err := crossCheck(spec, plat, best, *simMs); err != nil {
				fatal(err)
			}
		}
	}
}

// progressTicker returns a dse.Knobs.Progress callback plus a stop
// function. A background goroutine rewrites one w line every 500 ms with
// done/total, the completion rate and an ETA extrapolated from it; stop
// joins the goroutine and prints the final tally. The callback only stores
// atomics, so the sweep workers never block on terminal output. Stop is
// idempotent — every return path (including fatal ones) may call it — and
// only returns once the goroutine has exited, so no tick can race a later
// write to w.
func progressTicker(w io.Writer) (func(done, total int), func()) {
	var done, total atomic.Int64
	start := time.Now()
	quit := make(chan struct{})
	finished := make(chan struct{})
	tick := time.NewTicker(500 * time.Millisecond)
	report := func(final bool) {
		d, n := done.Load(), total.Load()
		if n == 0 {
			return
		}
		el := time.Since(start).Seconds()
		rate := float64(d) / el
		if final {
			fmt.Fprintf(w, "\rdse: %d/%d points in %.1fs (%.0f points/sec)\n", d, n, el, rate)
			return
		}
		eta := "…"
		if rate > 0 {
			eta = fmt.Sprintf("%.1fs", float64(n-d)/rate)
		}
		fmt.Fprintf(w, "\rdse: %d/%d points (%.0f points/sec, ETA %s) ", d, n, rate, eta)
	}
	go func() {
		defer close(finished)
		for {
			select {
			case <-quit:
				return
			case <-tick.C:
				report(false)
			}
		}
	}()
	cb := func(d, n int) {
		done.Store(int64(d))
		total.Store(int64(n))
	}
	var once sync.Once
	stop := func() {
		once.Do(func() {
			tick.Stop()
			close(quit)
			<-finished
			report(true)
		})
	}
	return cb, stop
}

// crossCheck simulates the recommended configuration and reports each
// task's observed worst response against its period — the empirical
// counterpart of the offline certificate.
func crossCheck(spec workload.SetSpec, plat cost.Platform, best dse.Point, horizonMs int64) error {
	plat.WeightBufBytes = best.StagingBytes
	pol := best.Policy()
	set, err := spec.Instantiate(plat, pol)
	if err != nil {
		return err
	}
	r, err := exec.Run(set, plat, pol, core.SatMulTime(sim.Millisecond, horizonMs))
	if err != nil {
		return err
	}
	fmt.Printf("\nempirical cross-check over %d ms:\n", horizonMs)
	for _, t := range set.Tasks {
		m := r.Metrics.PerTask[t.Name]
		fmt.Printf("  %-22s released %3d  worst response %8.3f ms  misses %d\n",
			//lint:allow millitime -- ms formatting at the report boundary; responses are far below 2^53 ns
			t.Name, m.Released, float64(m.MaxResponse)/1e6, m.Misses)
	}
	if r.Metrics.TotalMissRatio() > 0 {
		return fmt.Errorf("recommended configuration missed deadlines in simulation — please report this")
	}
	fmt.Println("  no deadline misses — the offline certificate holds empirically")
	return nil
}

// buildSpec resolves the workload: a scenario file's task list, or a
// synthetic generated set.
func buildSpec(path string, plat cost.Platform, n int, util float64, seed int64) (workload.SetSpec, string, error) {
	if path == "" {
		sp, err := workload.Generate(workload.Params{
			Seed: seed, N: n, Util: util, Platform: plat,
		})
		return sp, fmt.Sprintf("synthetic %d tasks @ U=%.2f", n, util), err
	}
	sc, err := scenario.Load(path)
	if err != nil {
		return workload.SetSpec{}, "", err
	}
	var sp workload.SetSpec
	for _, t := range sc.Tasks {
		if t.ModelFile != "" {
			return sp, "", fmt.Errorf("scenario task %s uses model_file; the explorer re-segments zoo models only", t.Name)
		}
		s := t.Seed
		if s == 0 {
			s = 1
		}
		//lint:allow millitime -- config-parse boundary: validated float ms from the scenario file
		period := sim.Duration(t.PeriodMs * float64(sim.Millisecond))
		deadline := period
		if t.DeadlineMs > 0 {
			//lint:allow millitime -- config-parse boundary: validated float ms from the scenario file
			deadline = sim.Duration(t.DeadlineMs * float64(sim.Millisecond))
		}
		sp.Tasks = append(sp.Tasks, workload.TaskSpec{
			Model: t.Model, Seed: s, Period: period, Deadline: deadline,
		})
	}
	return sp, fmt.Sprintf("scenario %s (%d tasks)", path, len(sc.Tasks)), nil
}

func buildKnobs(plat cost.Platform, staging, depths, deltas, chunks string) (dse.Knobs, error) {
	k := dse.DefaultKnobs(plat)
	var err error
	if staging != "" {
		if k.StagingBytes, err = parseList(staging, 1024); err != nil {
			return k, fmt.Errorf("-staging: %w", err)
		}
	}
	if depths != "" {
		ds, err := parseList(depths, 1)
		if err != nil {
			return k, fmt.Errorf("-depths: %w", err)
		}
		k.Depths = k.Depths[:0]
		for _, d := range ds {
			k.Depths = append(k.Depths, int(d))
		}
	}
	if deltas != "" {
		ms, err := parseFloatList(deltas)
		if err != nil {
			return k, fmt.Errorf("-delta: %w", err)
		}
		k.GranularityNs = k.GranularityNs[:0]
		for _, m := range ms {
			k.GranularityNs = append(k.GranularityNs, int64(m*1e6))
		}
	}
	if chunks != "" {
		if k.ChunkBytes, err = parseList(chunks, 1024); err != nil {
			return k, fmt.Errorf("-chunks: %w", err)
		}
	}
	return k, nil
}

// parseList parses "64,128,192" into values scaled by unit.
func parseList(s string, unit int64) ([]int64, error) {
	var out []int64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v*unit)
	}
	return out, nil
}

func parseFloatList(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func describe(p dse.Point) string {
	depth := fmt.Sprintf("depth %d", p.Depth)
	if p.TaskDepths != nil {
		depth = "windows " + windowsStr(p)
	}
	cfg := fmt.Sprintf("staging %4d KiB  %s  δ %.2f ms  chunk %s",
		p.StagingBytes>>10, depth, float64(p.GranularityNs)/1e6, chunkStr(p.ChunkBytes))
	switch {
	case p.Schedulable:
		return fmt.Sprintf("%s  →  α %.2f  slack %.2f ms", cfg, p.Alpha, float64(p.SlackNs)/1e6)
	case p.Feasible:
		return fmt.Sprintf("%s  →  unschedulable (%s)", cfg, p.Reason)
	default:
		return fmt.Sprintf("%s  →  infeasible (%s)", cfg, p.Reason)
	}
}

func chunkStr(b int64) string {
	if b == 0 {
		return "whole"
	}
	return fmt.Sprintf("%d KiB", b>>10)
}

func emitCSV(res *dse.Result) {
	fmt.Println("staging_bytes,depth,granularity_ns,chunk_bytes,windows,feasible,schedulable,alpha,slack_ns,frontier,reason")
	key := func(p dse.Point) string {
		return fmt.Sprintf("%d/%d/%d/%d/%s", p.StagingBytes, p.Depth,
			p.GranularityNs, p.ChunkBytes, windowsStr(p))
	}
	onFront := map[string]bool{}
	for _, p := range res.Frontier {
		onFront[key(p)] = true
	}
	for _, p := range res.Points {
		fmt.Printf("%d,%d,%d,%d,%s,%t,%t,%.3f,%d,%t,%q\n",
			p.StagingBytes, p.Depth, p.GranularityNs, p.ChunkBytes, windowsStr(p),
			p.Feasible, p.Schedulable, p.Alpha, p.SlackNs, onFront[key(p)], p.Reason)
	}
}

// windowsStr renders a tuned point's per-task windows ("uniform" when the
// point ran one policy-wide depth).
func windowsStr(p dse.Point) string {
	if p.TaskDepths == nil {
		return "uniform"
	}
	names := make([]string, 0, len(p.TaskDepths))
	for n := range p.TaskDepths {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s:%d", n, p.TaskDepths[n])
	}
	return strings.Join(parts, ";")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtmdm-dse:", err)
	os.Exit(1)
}
