// Command rtmdm-bench regenerates the reconstructed evaluation of the
// RT-MDM paper: one table per experiment ID (see DESIGN.md §6).
//
// Usage:
//
//	rtmdm-bench -all                     # every experiment, full scale
//	rtmdm-bench -exp F4 -sets 500        # one experiment, custom scale
//	rtmdm-bench -exp F4 -csv             # machine-readable output
//	rtmdm-bench -list                    # show the experiment index
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"rtmdm/internal/cost"
	"rtmdm/internal/exec"
	"rtmdm/internal/expr"
	"rtmdm/internal/metrics"
	"rtmdm/internal/plot"
	"rtmdm/internal/workload"
)

// jsonRecord is one -json line: enough to track performance regressions
// (wall time, allocation churn) and the domain result (the rendered table)
// without parsing aligned text.
type jsonRecord struct {
	ID         string     `json:"id"`
	Title      string     `json:"title"`
	WallMs     float64    `json:"wall_ms"`
	Allocs     uint64     `json:"allocs"`
	AllocBytes uint64     `json:"alloc_bytes"`
	Rows       int        `json:"rows"`
	Columns    []string   `json:"columns"`
	Table      [][]string `json:"table"`
	Notes      string     `json:"notes,omitempty"`
}

func main() {
	var (
		expID    = flag.String("exp", "", "experiment ID to run (T1, F2, …)")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list experiments and exit")
		sets     = flag.Int("sets", 0, "task sets per sweep point (0 = config default)")
		n        = flag.Int("n", 0, "tasks per generated set (0 = config default)")
		seed     = flag.Int64("seed", 0, "random seed (0 = config default)")
		quick    = flag.Bool("quick", false, "use the quick (smoke) configuration")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned text")
		jsonOut  = flag.Bool("json", false, "emit one JSON object per experiment (wall time, allocs, table)")
		outDir   = flag.String("outdir", "", "also write each experiment as <ID>.csv into this directory")
		svgDir   = flag.String("svgdir", "", "also render sweep experiments as <ID>.svg into this directory")
		platName = flag.String("platform", "", "platform preset (default stm32h743)")
		showMet  = flag.Bool("metrics", false, "dump a per-experiment metrics diff as JSON on stderr")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memProf  = flag.String("memprofile", "", "write a heap profile to this path at exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}
	if *memProf != "" {
		path := *memProf
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}

	if *list {
		for _, e := range expr.All() {
			fmt.Printf("  %-4s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := expr.DefaultConfig()
	if *quick {
		cfg = expr.QuickConfig()
	}
	if *sets > 0 {
		cfg.Sets = *sets
	}
	if *n > 0 {
		cfg.N = *n
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *platName != "" {
		p, err := cost.PlatformByName(*platName)
		if err != nil {
			fatal(err)
		}
		cfg.Platform = p
	}

	var exps []expr.Experiment
	switch {
	case *all:
		exps = expr.All()
	case *expID != "":
		e, err := expr.ByID(*expID)
		if err != nil {
			fatal(err)
		}
		exps = []expr.Experiment{e}
	default:
		fmt.Fprintln(os.Stderr, "rtmdm-bench: pass -exp <ID>, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}

	var reg *metrics.Registry
	if *showMet {
		reg = metrics.NewRegistry()
		exec.Instrument(reg)
		expr.Instrument(reg)
		workload.Instrument(reg)
	}
	enc := json.NewEncoder(os.Stdout)
	for i, e := range exps {
		var before runtime.MemStats
		if *jsonOut {
			runtime.ReadMemStats(&before)
		}
		var metBefore metrics.Snapshot
		if reg != nil {
			metBefore = reg.Snapshot()
		}
		start := time.Now()
		tb, err := e.Run(cfg)
		wall := time.Since(start)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		if reg != nil {
			// Counter diffs scope the snapshot to this experiment; gauges
			// (high-water marks) stay cumulative by design.
			fmt.Fprintf(os.Stderr, "metrics %s:\n", e.ID)
			if err := reg.Snapshot().Diff(metBefore).WriteJSON(os.Stderr); err != nil {
				fatal(err)
			}
		}
		switch {
		case *jsonOut:
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			if err := enc.Encode(jsonRecord{
				ID:         e.ID,
				Title:      tb.Title,
				WallMs:     float64(wall.Nanoseconds()) / 1e6,
				Allocs:     after.Mallocs - before.Mallocs,
				AllocBytes: after.TotalAlloc - before.TotalAlloc,
				Rows:       len(tb.Rows),
				Columns:    tb.Columns,
				Table:      tb.Rows,
				Notes:      tb.Notes,
			}); err != nil {
				fatal(err)
			}
		case *csv:
			tb.CSV(os.Stdout)
		default:
			if i > 0 {
				fmt.Println()
			}
			tb.Fprint(os.Stdout)
			fmt.Printf("  (%.1fs)\n", wall.Seconds())
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal(err)
			}
			f, err := os.Create(filepath.Join(*outDir, e.ID+".csv"))
			if err != nil {
				fatal(err)
			}
			tb.CSV(f)
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
		if *svgDir != "" {
			ch, err := plot.FromTable(e.ID+" — "+tb.Title, tb.Columns, tb.Rows)
			if err == nil { // tables without a numeric x axis are skipped
				if err := os.MkdirAll(*svgDir, 0o755); err != nil {
					fatal(err)
				}
				f, err := os.Create(filepath.Join(*svgDir, e.ID+".svg"))
				if err != nil {
					fatal(err)
				}
				if err := ch.Render(f); err != nil {
					fatal(err)
				}
				if err := f.Close(); err != nil {
					fatal(err)
				}
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtmdm-bench:", err)
	os.Exit(1)
}
