// Command rtmdm-serve exposes the RT-MDM engine as a long-running
// HTTP/JSON service: schedulability analysis, bounded deterministic
// simulation, and stateful incremental admission control.
//
// Usage:
//
//	rtmdm-serve [-addr :8080] [-workers N] [-queue N] [-timeout 15s]
//	            [-cache 256] [-admit-window 2ms] [-max-horizon-ms 60000]
//
// Endpoints:
//
//	GET  /healthz      liveness probe
//	GET  /readyz       readiness: 503 once shutdown begins (balancers drain first)
//	GET  /v1/metrics   metrics snapshot (see docs/OBSERVABILITY.md)
//	GET  /v1/snapshot  sealed admission-state snapshot (see docs/CLUSTER.md)
//	GET  /v1/export    one node's sealed state for live resharding
//	POST /v1/analyze   per-policy schedulability verdicts + WCRT bounds
//	POST /v1/simulate  deterministic simulation summary (+optional trace)
//	POST /v1/admit     incremental per-node admission control
//	POST /v1/import    install or release one node's state (reshard handoff)
//
// The process drains in-flight work on SIGINT/SIGTERM before exiting;
// see docs/SERVER.md for the API reference.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rtmdm/internal/cluster"
	"rtmdm/internal/exec"
	"rtmdm/internal/metrics"
	"rtmdm/internal/server"
)

// writeSnapshot dumps the admission state atomically: written to a temp
// file in the same directory, then renamed over the target, so a crash
// mid-write can never leave a truncated snapshot where a restore would
// find it (truncation is also caught by the checksum at decode).
func writeSnapshot(srv *server.Server, path, label string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := srv.WriteSnapshot(label, f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "max concurrent computations (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 0, "requests queued beyond running workers before 429 (0 = default 64, negative = no queue)")
		timeout      = flag.Duration("timeout", 15*time.Second, "per-request compute deadline")
		cacheSize    = flag.Int("cache", 256, "result-cache entries (negative disables)")
		admitWindow  = flag.Duration("admit-window", 2*time.Millisecond, "admission batching window")
		maxHorizonMs = flag.Float64("max-horizon-ms", 60000, "largest accepted scenario horizon in ms")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "shutdown drain deadline")
		snapshotPath = flag.String("snapshot", "", "admission snapshot file: restored at boot if present, written after drain")
		shardLabel   = flag.String("shard-label", "", "shard name stamped into exported snapshots")
	)
	flag.Parse()

	reg := metrics.NewRegistry()
	exec.Instrument(reg)
	cluster.Instrument(reg)
	srv := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		CacheEntries:   *cacheSize,
		AdmitWindow:    *admitWindow,
		MaxHorizonMs:   *maxHorizonMs,
		Registry:       reg,
		ShardLabel:     *shardLabel,
	})

	if *snapshotPath != "" {
		if f, err := os.Open(*snapshotPath); err == nil {
			n, rerr := srv.RestoreSnapshot(f)
			f.Close()
			if rerr != nil {
				fmt.Fprintln(os.Stderr, "rtmdm-serve: restore snapshot:", rerr)
				os.Exit(1)
			}
			fmt.Printf("rtmdm-serve: restored %d nodes from %s\n", n, *snapshotPath)
		} else if !os.IsNotExist(err) {
			fmt.Fprintln(os.Stderr, "rtmdm-serve:", err)
			os.Exit(1)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtmdm-serve:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Printf("rtmdm-serve: listening on %s\n", ln.Addr())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("rtmdm-serve: %s, draining\n", sig)
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "rtmdm-serve:", err)
		os.Exit(1)
	}

	// Flip readiness off before the listener closes: probes pulling
	// /readyz see the drain start and stop routing new work here while
	// in-flight requests finish.
	srv.SetReady(false)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "rtmdm-serve: http shutdown:", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "rtmdm-serve: drain:", err)
		os.Exit(1)
	}
	if *snapshotPath != "" {
		// The admitter is drained, so this snapshot is quiescent: a
		// replacement process restores it and resumes warm.
		if err := writeSnapshot(srv, *snapshotPath, *shardLabel); err != nil {
			fmt.Fprintln(os.Stderr, "rtmdm-serve: write snapshot:", err)
			os.Exit(1)
		}
		fmt.Printf("rtmdm-serve: snapshot written to %s\n", *snapshotPath)
	}
	fmt.Println("rtmdm-serve: drained")
}
