// Command rtmdm-inspect prints the model zoo: per-layer accounting and the
// segmentation a platform/policy pair would produce.
//
// Usage:
//
//	rtmdm-inspect                         # zoo summary
//	rtmdm-inspect -model ds-cnn           # per-layer detail + segments
//	rtmdm-inspect -model ds-cnn -n 3      # segmentation for a 3-task set
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"rtmdm/internal/core"
	"rtmdm/internal/cosim"
	"rtmdm/internal/cost"
	"rtmdm/internal/models"
	"rtmdm/internal/nn"
	"rtmdm/internal/segment"
)

func main() {
	var (
		modelName  = flag.String("model", "", "model to detail (default: zoo summary)")
		platName   = flag.String("platform", "stm32h743", "platform preset")
		polName    = flag.String("policy", "rt-mdm", "policy whose segmentation limits apply")
		n          = flag.Int("n", 3, "task-set size the SRAM is shared across")
		seed       = flag.Int64("seed", 1, "weight seed")
		exportPath = flag.String("export", "", "write the model as a binary artifact to this path")
		verify     = flag.Bool("verify", false, "co-simulate the segmented plan and verify bit-identical inference")
	)
	flag.Parse()

	plat, err := cost.PlatformByName(*platName)
	if err != nil {
		fatal(err)
	}
	pol, err := core.PolicyByName(*polName)
	if err != nil {
		fatal(err)
	}
	lim := pol.Limits(plat, *n)

	if *modelName == "" {
		fmt.Printf("%-18s %10s %10s %10s %7s %9s %9s\n",
			"model", "params", "MACs", "act-peak", "layers", "segments", "serial")
		for _, info := range models.Catalog() {
			m := info.Build(*seed)
			pl, err := segment.BuildLimits(m, plat, lim, segment.Greedy)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-18s %9.1fK %9.2fM %9.1fK %7d %9d %8.2fms\n",
				info.Name,
				float64(m.TotalParamBytes())/1024,
				float64(m.TotalMACs())/1e6,
				float64(m.PeakActivationBytes())/1024,
				m.NumLayers(), pl.NumSegments(),
				float64(pl.SerialNs())/1e6)
		}
		return
	}

	m, err := models.Build(*modelName, *seed)
	if err != nil {
		fatal(err)
	}
	if *exportPath != "" {
		f, err := os.Create(*exportPath)
		if err != nil {
			fatal(err)
		}
		if err := m.Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		st, _ := os.Stat(*exportPath)
		fmt.Printf("exported %s to %s (%d bytes)\n", m.Name, *exportPath, st.Size())
		return
	}
	fmt.Printf("%s: input %v, %d layers, %.1f KiB params, %.2f M MACs\n\n",
		m.Name, m.Input, m.NumLayers(),
		float64(m.TotalParamBytes())/1024, float64(m.TotalMACs())/1e6)
	fmt.Printf("%-4s %-12s %-10s %-10s %10s %12s %10s\n",
		"#", "layer", "kind", "out", "params(B)", "MACs", "time")
	for i, nd := range m.Nodes {
		l := nd.Layer
		fmt.Printf("%-4d %-12s %-10s %-10s %10d %12d %9.3fms\n",
			i, l.Name(), l.Kind(), l.OutShape(),
			l.ParamBytes(), l.MACs(),
			float64(plat.CPU.LayerTimeNs(l))/1e6)
	}

	pl, err := segment.BuildLimits(m, plat, lim, segment.Greedy)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nsegmentation on %s under %s (budget %d KiB, δ %.2f ms): %d segments\n",
		plat.Name, pol.Name, lim.Bytes>>10, float64(lim.ComputeNs)/1e6, pl.NumSegments())
	fmt.Printf("%-4s %-24s %10s %10s %10s\n", "seg", "nodes", "load(B)", "load", "compute")
	for _, s := range pl.Segments {
		first, last := s.Parts[0].Node, s.Parts[len(s.Parts)-1].Node
		span := fmt.Sprintf("%d..%d", first, last)
		if first == last {
			span = fmt.Sprintf("%d", first)
			if !s.Parts[0].Whole() {
				span += fmt.Sprintf(" (1/%d slice)", s.Parts[0].Den)
			}
		}
		fmt.Printf("%-4d %-24s %10d %9.3fms %9.3fms\n",
			s.Index, span, s.LoadBytes,
			float64(s.LoadNs)/1e6, float64(s.ComputeNs)/1e6)
	}
	fmt.Printf("\nserial %.3f ms, pipelined(depth %d) %.3f ms, speedup %.2f\n",
		float64(pl.SerialNs())/1e6, pol.Depth,
		float64(pl.PipelineNs(pol.Depth))/1e6,
		float64(pl.SerialNs())/float64(pl.PipelineNs(pol.Depth)))

	if *verify {
		rng := rand.New(rand.NewSource(99))
		x := nn.NewTensor(m.Input, m.InQuant)
		for i := range x.Data {
			x.Data[i] = int8(rng.Intn(255) - 127)
		}
		want := m.Forward(x)
		got, err := cosim.ExecutePlan(pl, x)
		if err != nil {
			fatal(err)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				fatal(fmt.Errorf("segment-wise execution diverges at output %d", i))
			}
		}
		fmt.Printf("verified: segment-wise execution bit-identical over %d outputs\n", len(want.Data))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtmdm-inspect:", err)
	os.Exit(1)
}
