// Command rtmdm-gateway fronts a sharded rtmdm-serve cluster: it routes
// /v1/admit by consistent hash of the node name and /v1/analyze and
// /v1/simulate by consistent hash of the canonical scenario, with
// per-shard admission batching, bounded fan-out, retry/backoff against
// degraded shards, and per-tenant quotas with weighted fairness.
//
// Usage:
//
//	rtmdm-gateway -shards http://127.0.0.1:18201,http://127.0.0.1:18202 \
//	    [-addr :8090] [-replicas 64] [-shard-timeout 15s] [-retries 2]
//	    [-retry-backoff 50ms] [-fail-threshold 3] [-probe-interval 1s]
//	    [-admit-window 2ms] [-max-inflight 16]
//	    [-tenants gold=3,free=1] [-tenant-budget 64]
//	    [-request-budget 45s] [-hedge-delay 0] [-degraded-mode conservative-deny]
//
// Endpoints:
//
//	GET  /healthz      gateway + per-shard health (liveness)
//	GET  /readyz       readiness: 503 while a reshard migration is in flight
//	GET  /v1/metrics   gateway.* / cluster.* metrics snapshot
//	POST /v1/admit     routed by node to its owning shard
//	POST /v1/analyze   routed by canonical scenario hash (cache affinity)
//	POST /v1/reshard   live migration to a new shard list (epoch bump + state handoff)
//	POST /v1/simulate  routed by canonical scenario hash (cache affinity)
//
// See docs/CLUSTER.md for ring semantics, the per-shard determinism
// contract, and the failure-mode table.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rtmdm/internal/cluster"
	"rtmdm/internal/metrics"
)

func main() {
	var (
		addr          = flag.String("addr", ":8090", "listen address")
		shards        = flag.String("shards", "", "comma-separated rtmdm-serve base URLs (required)")
		replicas      = flag.Int("replicas", 64, "virtual ring points per shard")
		shardTimeout  = flag.Duration("shard-timeout", 15*time.Second, "per-attempt shard deadline")
		retries       = flag.Int("retries", 2, "extra attempts after a failed shard round trip")
		retryBackoff  = flag.Duration("retry-backoff", 50*time.Millisecond, "first retry backoff (doubles per attempt)")
		failThreshold = flag.Int("fail-threshold", 3, "consecutive failures before a shard is degraded")
		probeInterval = flag.Duration("probe-interval", time.Second, "rest before a degraded shard is probed")
		admitWindow   = flag.Duration("admit-window", 2*time.Millisecond, "per-shard admission batching window (negative disables)")
		maxInflight   = flag.Int("max-inflight", 16, "concurrent forwards per shard")
		tenants       = flag.String("tenants", "", "tenant weights name=w,... (empty disables quotas)")
		tenantBudget  = flag.Int("tenant-budget", 64, "global in-flight budget split by tenant weights")
		requestBudget = flag.Duration("request-budget", 45*time.Second, "end-to-end deadline per proxied request (negative disables)")
		hedgeDelay    = flag.Duration("hedge-delay", 0, "hedge reads to the next ring owner after this delay (0 disables)")
		degradedMode  = flag.String("degraded-mode", cluster.DegradedConservativeDeny,
			"policy for requests caught behind a migration: conservative-deny or fail-fast")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "shutdown drain deadline")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "rtmdm-gateway:", err)
		os.Exit(1)
	}
	if strings.TrimSpace(*shards) == "" {
		fail(fmt.Errorf("-shards is required (comma-separated rtmdm-serve URLs)"))
	}
	weights, err := cluster.ParseTenantWeights(*tenants)
	if err != nil {
		fail(err)
	}

	reg := metrics.NewRegistry()
	cluster.Instrument(reg)
	gw, err := cluster.NewGateway(cluster.Config{
		Shards:        strings.Split(*shards, ","),
		Replicas:      *replicas,
		ShardTimeout:  *shardTimeout,
		Retries:       *retries,
		RetryBackoff:  *retryBackoff,
		FailThreshold: *failThreshold,
		ProbeInterval: *probeInterval,
		AdmitWindow:   *admitWindow,
		MaxInflight:   *maxInflight,
		TenantWeights: weights,
		TenantBudget:  *tenantBudget,
		RequestBudget: *requestBudget,
		HedgeDelay:    *hedgeDelay,
		DegradedMode:  *degradedMode,
		Registry:      reg,
	})
	if err != nil {
		fail(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	httpSrv := &http.Server{Handler: gw, ReadHeaderTimeout: 10 * time.Second}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Printf("rtmdm-gateway: listening on %s, %d shards\n", ln.Addr(), len(strings.Split(*shards, ",")))

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("rtmdm-gateway: %s, draining\n", sig)
	case err := <-errCh:
		fail(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "rtmdm-gateway: http shutdown:", err)
	}
	if err := gw.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "rtmdm-gateway: drain:", err)
		os.Exit(1)
	}
	fmt.Println("rtmdm-gateway: drained")
}
