// Command rtmdm-sim runs one multi-DNN scenario on the simulated MCU and
// reports per-task outcomes, the schedulability verdict, an optional ASCII
// timeline, a Perfetto-loadable trace export, and run-level metrics.
//
// Usage:
//
//	rtmdm-sim -tasks "ds-cnn:50,mobilenetv1-0.25:150,autoencoder:100" \
//	          -policy rt-mdm -horizon 600 [-platform stm32h743] \
//	          [-trace out.json] [-metrics] [-timeline] [-dump]
//	rtmdm-sim -config scenario.json [-timeline]
//
// Each task spec is model:period_ms[:deadline_ms]. JSON scenarios follow
// internal/scenario's schema. -trace writes the Chrome Trace Event Format
// consumed by ui.perfetto.dev (see docs/OBSERVABILITY.md).
package main

import (
	"flag"
	"fmt"
	"os"

	"rtmdm/internal/analysis"
	"rtmdm/internal/core"
	"rtmdm/internal/cost"
	"rtmdm/internal/exec"
	"rtmdm/internal/fault"
	"rtmdm/internal/metrics"
	"rtmdm/internal/scenario"
	"rtmdm/internal/sim"
	"rtmdm/internal/task"
	"rtmdm/internal/trace"
)

func main() {
	var (
		taskSpec   = flag.String("tasks", "", "comma-separated model:period_ms[:deadline_ms]")
		configPath = flag.String("config", "", "JSON scenario file (overrides -tasks/-policy/-platform/-horizon)")
		polName    = flag.String("policy", "rt-mdm", "scheduling policy (see -policies)")
		policies   = flag.Bool("policies", false, "list policies and exit")
		platName   = flag.String("platform", "stm32h743", "platform preset")
		horizonMs  = flag.Int64("horizon", 1000, "simulation horizon in ms")
		seed       = flag.Int64("seed", 1, "model weight seed")
		dumpTrace  = flag.Bool("dump", false, "dump the full execution trace as text")
		traceJSON  = flag.String("trace", "", "write the trace in Trace Event Format (Perfetto/chrome://tracing) to this path")
		traceCSV   = flag.String("trace-csv", "", "write the trace as CSV to this path")
		showMetric = flag.Bool("metrics", false, "dump the run-level metrics snapshot as JSON")
		timeline   = flag.Bool("timeline", false, "render an ASCII Gantt timeline")
		tlWidth    = flag.Int("timeline-width", 120, "timeline width in columns")
		faultSpec  = flag.String("faults", "", "fault-injection spec, e.g. \"overrun=0.2,factor=2,xfer=0.01\" (overrides the scenario stanza)")
		faultSeed  = flag.Int64("fault-seed", 0, "override the fault-injection seed (0 keeps the spec's)")
		overrun    = flag.String("overrun", "", "overrun handling: continue, abort, or skip-next (overrides policy/scenario)")
	)
	flag.Parse()

	if *policies {
		for _, n := range core.PolicyNames() {
			fmt.Println(" ", n)
		}
		return
	}

	var (
		set      *task.Set
		plat     cost.Platform
		pol      core.Policy
		horizon  sim.Duration
		faultCfg *fault.Config
		err      error
	)
	switch {
	case *configPath != "":
		sc, err2 := scenario.Load(*configPath)
		if err2 != nil {
			fatal(err2)
		}
		set, plat, pol, err = sc.Build()
		if err != nil {
			fatal(err)
		}
		horizon = sc.Horizon()
		if sc.Faults != nil {
			cfg := sc.Faults.Config
			faultCfg = &cfg
		}
	case *taskSpec != "":
		specs, err2 := scenario.ParseTaskList(*taskSpec, *seed)
		if err2 != nil {
			fatal(err2)
		}
		sc := &scenario.Scenario{
			Platform:  *platName,
			Policy:    *polName,
			HorizonMs: float64(*horizonMs),
			Tasks:     specs,
		}
		set, plat, pol, err = sc.Build()
		if err != nil {
			// Provisioning and validation errors are fatal except for
			// deliberate over-provisioning experiments, where the message
			// suffices.
			fatal(err)
		}
		horizon = sc.Horizon()
	default:
		fmt.Fprintln(os.Stderr, "rtmdm-sim: pass -tasks or -config")
		os.Exit(2)
	}

	if *faultSpec != "" {
		cfg, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			fatal(err)
		}
		faultCfg = &cfg
	}
	var plan *fault.Plan
	if faultCfg != nil {
		if *faultSeed != 0 {
			faultCfg.Seed = *faultSeed
		}
		if plan, err = fault.New(*faultCfg, horizon); err != nil {
			fatal(err)
		}
	}
	if *overrun != "" {
		op, err := core.ParseOverrunPolicy(*overrun)
		if err != nil {
			fatal(err)
		}
		pol.Overrun = op
	}

	fmt.Printf("platform %s, policy %s, horizon %v\n", plat.Name, pol.Name, horizon)
	if plan != nil {
		fmt.Printf("fault injection active (seed %d, overrun handling %s)\n", faultCfg.Seed, pol.Overrun)
	}
	fmt.Printf("reference utilization: cpu %.3f, dma %.3f, serial %.3f\n\n",
		set.CPUUtilization(), set.DMAUtilization(), set.SerialUtilization())

	if test, err := analysis.ForPolicy(pol); err == nil {
		v := test(set, plat)
		fmt.Printf("offline analysis (%s): schedulable=%v", v.Test, v.Schedulable)
		if v.Reason != "" {
			fmt.Printf(" (%s)", v.Reason)
		}
		fmt.Println()
		for _, t := range set.ByPriority() {
			if r, ok := v.WCRT[t.Name]; ok {
				fmt.Printf("  %-24s prio %d  WCRT %-12v D %v\n", t.Name, t.Priority, r, t.Deadline)
			}
		}
	} else {
		fmt.Printf("offline analysis: %v\n", err)
	}

	var reg *metrics.Registry
	if *showMetric {
		reg = metrics.NewRegistry()
		exec.Instrument(reg)
	}
	r, err := exec.RunWithFaults(set, plat, pol, horizon, plan)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nsimulation (%d trace events):\n", r.Trace.Len())
	fmt.Printf("  cpu busy %.1f%%, dma busy %.1f%%, sram peak %d B\n",
		100*r.CPUUtilization(), 100*r.DMAUtilization(), r.SRAMPeak)
	fmt.Printf("  flash read %.1f KiB, energy %.2f mJ, avg power %.1f mW\n",
		float64(r.FlashBytes)/1024, r.EnergyMicroJ/1000, r.AvgPowerMw)
	if plan != nil {
		fmt.Printf("  faults injected %d, jobs aborted %d, dma retries %d, releases suppressed %d\n",
			r.FaultsInjected, r.JobsAborted, r.DMARetries, r.ReleasesSuppressed)
	}
	for _, t := range set.ByPriority() {
		tm := r.Metrics.PerTask[t.Name]
		fmt.Printf("  %-24s jobs %3d/%3d  max %-12v p95 %-12v avg %-12v miss %.1f%%\n",
			t.Name, tm.Completed, tm.Released, tm.MaxResponse, tm.Percentile(95),
			tm.AvgResponse(), 100*tm.MissRatio())
	}
	if *timeline {
		// Show up to two periods of the slowest task (capped to horizon).
		var maxT sim.Duration
		for _, t := range set.Tasks {
			if t.Period > maxT {
				maxT = t.Period
			}
		}
		window := core.SatMulTime(maxT, 2)
		if window > horizon {
			window = horizon
		}
		fmt.Println()
		if err := (trace.Timeline{From: 0, To: window, Width: *tlWidth}).Render(os.Stdout, r.Trace, r.Infos); err != nil {
			fatal(err)
		}
	}
	if *traceJSON != "" {
		f, err := os.Create(*traceJSON)
		if err != nil {
			fatal(err)
		}
		if err := trace.ExportJSON(f, r.Trace, r.Infos); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nPerfetto trace written to %s (%d events) — load it at https://ui.perfetto.dev\n",
			*traceJSON, r.Trace.Len())
	}
	if *traceCSV != "" {
		f, err := os.Create(*traceCSV)
		if err != nil {
			fatal(err)
		}
		if err := r.Trace.CSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\ntrace written to %s (%d events)\n", *traceCSV, r.Trace.Len())
	}
	if *dumpTrace {
		fmt.Println("\ntrace:")
		r.Trace.Dump(os.Stdout)
	}
	if reg != nil {
		fmt.Println("\nmetrics:")
		if err := reg.Snapshot().WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtmdm-sim:", err)
	os.Exit(1)
}
