// Command rtmdm-corpus expands a seeded scenario corpus spec and sweeps
// the differential soundness oracle over it: every generated scenario
// runs both the schedulability analysis and the simulator, asserting
// analysis-schedulable ⇒ zero simulated deadline misses plus
// incremental-vs-cold analyzer verdict parity. See docs/CORPUS.md.
//
// Usage:
//
//	rtmdm-corpus [-spec spec.json | -preset smoke|default]
//	             [-count N] [-seed S] [-workers N]
//	             [-json report.json] [-manifest out.txt]
//	             [-checkpoint ckpt.json] [-checkpoint-every N]
//	             [-shrink] [-repro-dir dir]
//	             [-inject-bug] [-metrics] [-v]
//
// Exit status: 0 when the sweep completes with zero violations, 1 on
// violations or operational errors. With -inject-bug the meaning
// inverts: the run deliberately corrupts the analysis verdict and exits
// 0 only if the oracle caught it — a self-check that the harness can
// actually fail.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"rtmdm/internal/analysis"
	"rtmdm/internal/corpus"
	"rtmdm/internal/exec"
	"rtmdm/internal/metrics"
	"rtmdm/internal/workload"
)

func main() {
	var (
		specPath   = flag.String("spec", "", "corpus spec JSON file (default: -preset)")
		preset     = flag.String("preset", "smoke", "built-in spec when -spec is absent: smoke or default")
		count      = flag.Int("count", 0, "override the spec's scenario count")
		seed       = flag.Int64("seed", 0, "override the spec's seed")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size")
		jsonOut    = flag.String("json", "", "write the JSON report to this file (- for stdout)")
		manifest   = flag.String("manifest", "", "write the deterministic corpus manifest to this file")
		ckpt       = flag.String("checkpoint", "", "resumable checkpoint file (resumes automatically if present)")
		ckptEvery  = flag.Int("checkpoint-every", 256, "completions between checkpoint writes")
		shrink     = flag.Bool("shrink", false, "minimize each violating scenario and write repros")
		reproDir   = flag.String("repro-dir", "testdata/corpus-repros", "directory for shrinker repro files")
		injectBug  = flag.Bool("inject-bug", false, "self-check: corrupt the analysis verdict and require the oracle to fire")
		showMetric = flag.Bool("metrics", false, "dump the corpus metrics snapshot as JSON")
		verbose    = flag.Bool("v", false, "progress output")
	)
	flag.Parse()

	spec, err := loadSpec(*specPath, *preset)
	if err != nil {
		fatal(err)
	}
	if *count > 0 {
		spec.Count = *count
	}
	if *seed != 0 {
		spec.Seed = *seed
	}

	gen, err := corpus.NewGenerator(spec)
	if err != nil {
		fatal(err)
	}
	oracle := corpus.NewOracle(gen)
	oracle.InjectVerdictBug = *injectBug

	var reg *metrics.Registry
	if *showMetric {
		reg = metrics.NewRegistry()
		corpus.Instrument(reg)
		analysis.Instrument(reg)
		exec.Instrument(reg)
		workload.Instrument(reg)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	runner := &corpus.Runner{
		Oracle:          oracle,
		Workers:         *workers,
		CheckpointPath:  *ckpt,
		CheckpointEvery: *ckptEvery,
	}
	if *verbose {
		var last atomic.Int64
		runner.Progress = func(done, total int) {
			// Throttle to ~1 line per 2% without a timer.
			step := total / 50
			if step < 1 {
				step = 1
			}
			if done%step == 0 || done == total {
				if last.Swap(int64(done)) != int64(done) {
					fmt.Fprintf(os.Stderr, "rtmdm-corpus: %d/%d\n", done, total)
				}
			}
		}
	}

	start := time.Now()
	rep, outcomes, runErr := runner.Run(ctx)
	if rep != nil {
		rep.ElapsedNs = time.Since(start).Nanoseconds()
		if secs := float64(rep.ElapsedNs) / 1e9; secs > 0 {
			rep.ScenariosPerSec = float64(rep.Checked-rep.Resumed) / secs
		}
	}
	if runErr != nil && rep == nil {
		fatal(runErr)
	}

	if *shrink && len(rep.Violations) > 0 {
		shrinkViolations(ctx, oracle, gen, rep, *reproDir, *verbose)
	}

	if *manifest != "" {
		if err := os.WriteFile(*manifest, []byte(corpus.Manifest(gen, outcomes)), 0o644); err != nil {
			fatal(err)
		}
	}
	if *jsonOut != "" {
		if err := writeReport(*jsonOut, rep); err != nil {
			fatal(err)
		}
	}
	printSummary(rep)
	if reg != nil {
		fmt.Println("\nmetrics:")
		if err := reg.Snapshot().WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if runErr != nil {
		fatal(runErr)
	}

	violations := rep.Classes[corpus.ClassViolation]
	if *injectBug {
		// Self-check: the corrupted verdict must have tripped the oracle.
		if violations == 0 {
			fatal(fmt.Errorf("self-check failed: injected verdict bug produced no violations — the oracle is not live"))
		}
		fmt.Printf("self-check ok: injected bug tripped %d violations\n", violations)
		return
	}
	if violations > 0 {
		os.Exit(1)
	}
}

func loadSpec(path, preset string) (*corpus.Spec, error) {
	if path != "" {
		return corpus.LoadSpec(path)
	}
	switch preset {
	case "smoke":
		return corpus.SmokeSpec(), nil
	case "default":
		return corpus.DefaultSpec(), nil
	default:
		return nil, fmt.Errorf("unknown preset %q (want smoke or default)", preset)
	}
}

// shrinkViolations minimizes each violating scenario and writes repro
// files; the minimized scenarios are attached to the report in place of
// nothing (the original outcomes are untouched — the manifest must not
// depend on whether -shrink ran).
func shrinkViolations(ctx context.Context, oracle *corpus.Oracle, gen *corpus.Generator, rep *corpus.Report, dir string, verbose bool) {
	for _, v := range rep.Violations {
		if ctx.Err() != nil {
			return
		}
		item, err := oracle.Generated(v.Index)
		if err != nil {
			continue
		}
		min, vs, steps := corpus.Shrink(ctx, oracle, item.Scenario)
		if len(vs) == 0 {
			continue
		}
		path, err := corpus.WriteRepro(dir, &corpus.Repro{
			ID:         v.ID,
			SpecDigest: gen.Digest(),
			Index:      v.Index,
			Violations: vs,
			Scenario:   min,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtmdm-corpus: repro: %v\n", err)
			continue
		}
		if verbose {
			fmt.Fprintf(os.Stderr, "rtmdm-corpus: shrunk #%d to %d tasks in %d steps → %s\n",
				v.Index, len(min.Tasks), steps, path)
		}
	}
}

func writeReport(path string, rep *corpus.Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func printSummary(rep *corpus.Report) {
	fmt.Printf("corpus: %d scenarios (spec %.12s…), %d checked", rep.Count, rep.SpecDigest, rep.Checked)
	if rep.Resumed > 0 {
		fmt.Printf(" (%d resumed)", rep.Resumed)
	}
	fmt.Println()
	for _, class := range []string{corpus.ClassOK, corpus.ClassUnsupported, corpus.ClassGenerateError, corpus.ClassViolation, corpus.ClassCanceled} {
		if n := rep.Classes[class]; n > 0 {
			fmt.Printf("  %-20s %d\n", class, n)
		}
	}
	fmt.Printf("  warm parity          %d\n", rep.WarmParity)
	if rep.ScenariosPerSec > 0 {
		fmt.Printf("  throughput           %.1f scenarios/s\n", rep.ScenariosPerSec)
	}
	fmt.Printf("  manifest digest      %s\n", rep.ManifestDigest)
	for _, v := range rep.Violations {
		fmt.Printf("  VIOLATION #%d %s: %v\n", v.Index, v.ID, v.Violations)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtmdm-corpus:", err)
	os.Exit(1)
}
