// Command rtmdm-loadgen drives an rtmdm-serve instance with a
// configurable request mix and reports latency percentiles, throughput,
// and the cache speedup (cold analyze p50 over cache-hit p50).
//
// Usage:
//
//	rtmdm-loadgen -url http://localhost:8080 [-concurrency 8]
//	              [-duration 10s] [-mix analyze=4,simulate=4,admit=2]
//	              [-cold 16] [-quick] [-min-speedup 0]
//
// The run has two phases: a calibration phase that measures the cold
// (cache-miss) and hot (cache-hit) analyze paths on distinct scenarios,
// then a mixed-load phase at the requested concurrency. -quick shrinks
// both for CI smoke tests; -min-speedup N fails the process if the
// measured cache speedup is below N×.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type sample struct {
	endpoint string
	cache    string // X-Rtmdm-Cache header, "" for admit
	status   int
	latency  time.Duration
}

type collector struct {
	mu      sync.Mutex
	samples []sample
}

func (c *collector) add(s sample) {
	c.mu.Lock()
	c.samples = append(c.samples, s)
	c.mu.Unlock()
}

func percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(p / 100 * float64(len(sorted)))
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// client wraps the HTTP plumbing shared by all phases.
type client struct {
	base string
	http *http.Client
}

func (c *client) post(path, body string) (status int, cache string, latency time.Duration, err error) {
	start := time.Now()
	resp, err := c.http.Post(c.base+path, "application/json", strings.NewReader(body))
	latency = time.Since(start)
	if err != nil {
		return 0, "", latency, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("X-Rtmdm-Cache"), latency, nil
}

// scenarioJSON builds a small two-task scenario whose identity varies
// with variant, so distinct variants are distinct cache keys.
func scenarioJSON(variant int) string {
	period := 40 + 2*(variant%20)
	return fmt.Sprintf(`{"horizon_ms": 200, "tasks": [
		{"name": "kws", "model": "ds-cnn", "period_ms": %d},
		{"name": "ae", "model": "autoencoder", "period_ms": %d}
	]}`, period, 2*period)
}

func analyzeBody(variant int) string {
	return fmt.Sprintf(`{"scenario": %s, "policies": ["rt-mdm", "serial-segfp"]}`, scenarioJSON(variant))
}

func simulateBody(variant int) string {
	return fmt.Sprintf(`{"scenario": %s}`, scenarioJSON(variant))
}

func admitBody(id uint64, node string, taskIdx int) string {
	return fmt.Sprintf(`{"request_id": %d, "node": %q, "task": {
		"name": "t%d", "model": "lenet5", "period_ms": %d
	}}`, id, node, taskIdx, 80+5*(taskIdx%10))
}

func parseMix(spec string) (map[string]int, error) {
	mix := map[string]int{}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad mix entry %q", part)
		}
		w, err := strconv.Atoi(kv[1])
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad mix weight %q", part)
		}
		switch kv[0] {
		case "analyze", "simulate", "admit":
			mix[kv[0]] = w
		default:
			return nil, fmt.Errorf("unknown endpoint %q in mix", kv[0])
		}
	}
	return mix, nil
}

func waitHealthy(c *client, deadline time.Duration) error {
	until := time.Now().Add(deadline)
	for time.Now().Before(until) {
		resp, err := c.http.Get(c.base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("server at %s not healthy after %v", c.base, deadline)
}

func main() {
	var (
		url         = flag.String("url", "http://localhost:8080", "rtmdm-serve base URL")
		concurrency = flag.Int("concurrency", 8, "mixed-phase worker count")
		duration    = flag.Duration("duration", 10*time.Second, "mixed-phase length")
		mixSpec     = flag.String("mix", "analyze=4,simulate=4,admit=2", "endpoint weights")
		cold        = flag.Int("cold", 16, "distinct scenarios in the calibration phase")
		quick       = flag.Bool("quick", false, "CI smoke preset: -concurrency 4 -duration 2s -cold 8")
		minSpeedup  = flag.Float64("min-speedup", 0, "fail unless cache speedup (cold p50 / hit p50) reaches this factor")
		reqTimeout  = flag.Duration("request-timeout", 30*time.Second, "per-request client timeout")
		healthWait  = flag.Duration("health-wait", 10*time.Second, "how long to wait for /healthz")
	)
	flag.Parse()
	if *quick {
		*concurrency, *duration, *cold = 4, 2*time.Second, 8
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtmdm-loadgen:", err)
		os.Exit(2)
	}

	c := &client{base: strings.TrimRight(*url, "/"), http: &http.Client{Timeout: *reqTimeout}}
	if err := waitHealthy(c, *healthWait); err != nil {
		fmt.Fprintln(os.Stderr, "rtmdm-loadgen:", err)
		os.Exit(1)
	}
	fmt.Printf("rtmdm-loadgen: target %s\n", c.base)

	speedup := calibrate(c, *cold)
	runMixed(c, mix, *concurrency, *duration)

	if *minSpeedup > 0 && speedup < *minSpeedup {
		fmt.Fprintf(os.Stderr, "rtmdm-loadgen: cache speedup %.1fx below required %.1fx\n", speedup, *minSpeedup)
		os.Exit(1)
	}
}

// calibrate measures the cold (miss) and hot (hit) analyze paths and
// returns the p50 speedup factor.
func calibrate(c *client, cold int) float64 {
	var coldLat, hotLat []time.Duration
	for i := 0; i < cold; i++ {
		status, cache, lat, err := c.post("/v1/analyze", analyzeBody(i))
		if err != nil || status != http.StatusOK {
			fmt.Fprintf(os.Stderr, "rtmdm-loadgen: cold analyze %d: status %d err %v\n", i, status, err)
			os.Exit(1)
		}
		if cache == "miss" {
			coldLat = append(coldLat, lat)
		}
	}
	const hotRounds = 5
	for r := 0; r < hotRounds; r++ {
		for i := 0; i < cold; i++ {
			status, cache, lat, err := c.post("/v1/analyze", analyzeBody(i))
			if err != nil || status != http.StatusOK {
				fmt.Fprintf(os.Stderr, "rtmdm-loadgen: hot analyze %d: status %d err %v\n", i, status, err)
				os.Exit(1)
			}
			if cache == "hit" {
				hotLat = append(hotLat, lat)
			}
		}
	}
	coldP50, hotP50 := percentile(coldLat, 50), percentile(hotLat, 50)
	fmt.Printf("cold analyze: n=%d p50=%v p90=%v\n", len(coldLat), coldP50, percentile(coldLat, 90))
	fmt.Printf("hot  analyze: n=%d p50=%v p90=%v\n", len(hotLat), hotP50, percentile(hotLat, 90))
	if hotP50 <= 0 || len(coldLat) == 0 {
		fmt.Println("cache speedup: n/a")
		return 0
	}
	speedup := float64(coldP50) / float64(hotP50)
	fmt.Printf("cache speedup: %.1fx (cold p50 %v / hit p50 %v)\n", speedup, coldP50, hotP50)
	return speedup
}

// runMixed fires the weighted endpoint mix from concurrent workers for
// the configured duration and prints the per-endpoint report.
func runMixed(c *client, mix map[string]int, concurrency int, duration time.Duration) {
	var endpoints []string
	for _, ep := range []string{"analyze", "simulate", "admit"} {
		for i := 0; i < mix[ep]; i++ {
			endpoints = append(endpoints, ep)
		}
	}
	if len(endpoints) == 0 {
		fmt.Println("mixed phase: empty mix, skipped")
		return
	}

	col := &collector{}
	var reqID atomic.Uint64
	stop := time.Now().Add(duration)
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			node := fmt.Sprintf("node-%d", w)
			taskIdx := 0
			for time.Now().Before(stop) {
				ep := endpoints[rng.Intn(len(endpoints))]
				variant := rng.Intn(24)
				var status int
				var cache string
				var lat time.Duration
				var err error
				switch ep {
				case "analyze":
					status, cache, lat, err = c.post("/v1/analyze", analyzeBody(variant))
				case "simulate":
					status, cache, lat, err = c.post("/v1/simulate", simulateBody(variant))
				case "admit":
					taskIdx++
					status, cache, lat, err = c.post("/v1/admit", admitBody(reqID.Add(1), node, taskIdx))
				}
				if err != nil {
					status = 0
				}
				col.add(sample{endpoint: ep, cache: cache, status: status, latency: lat})
			}
		}(w)
	}
	wg.Wait()

	fmt.Printf("mixed phase: %v, %d workers\n", duration, concurrency)
	total, errors := 0, 0
	for _, ep := range []string{"analyze", "simulate", "admit"} {
		var lats []time.Duration
		n, errs, shed := 0, 0, 0
		states := map[string]int{}
		for _, s := range col.samples {
			if s.endpoint != ep {
				continue
			}
			n++
			switch {
			case s.status == http.StatusTooManyRequests:
				shed++
			case s.status != http.StatusOK:
				errs++
			default:
				lats = append(lats, s.latency)
				if s.cache != "" {
					states[s.cache]++
				}
			}
		}
		total += n
		errors += errs
		if n == 0 {
			continue
		}
		fmt.Printf("  %-8s n=%-5d err=%-3d shed=%-3d p50=%-10v p90=%-10v p99=%v\n",
			ep, n, errs, shed, percentile(lats, 50), percentile(lats, 90), percentile(lats, 99))
		if len(states) > 0 {
			fmt.Printf("  %-8s cache: hit=%d miss=%d coalesced=%d\n",
				"", states["hit"], states["miss"], states["coalesced"])
		}
	}
	secs := duration.Seconds()
	if secs <= 0 {
		secs = 1
	}
	fmt.Printf("total: %d requests in %v (%.1f req/s), %d errors\n",
		total, duration, float64(total)/secs, errors)
	if errors > 0 {
		os.Exit(1)
	}
}
