// Command rtmdm-loadgen drives an rtmdm-serve instance with a
// configurable request mix and reports latency percentiles, throughput,
// and the cache speedup (cold analyze p50 over cache-hit p50).
//
// Usage:
//
//	rtmdm-loadgen -url http://localhost:8080 [-concurrency 8]
//	              [-duration 10s] [-mix analyze=4,simulate=4,admit=2]
//	              [-cold 16] [-quick] [-min-speedup 0]
//	rtmdm-loadgen -url http://localhost:8080 -churn [-churn-nodes 4]
//	              [-churn-tasks 16] [-hot-frac 0.7] [-min-warm-speedup 0]
//
// The default run has two phases: a calibration phase that measures the
// cold (cache-miss) and hot (cache-hit) analyze paths on distinct
// scenarios, then a mixed-load phase at the requested concurrency.
// -quick shrinks both for CI smoke tests; -min-speedup N fails the
// process if the measured cache speedup is below N×.
//
// -churn replaces both phases with an admission churn run against the
// server's incremental analyzers: a fill phase commits a task set per
// node (every admission evaluates at a new set size, so the per-task
// term caches cannot help — the cold baseline), then a probe phase
// interleaves probe additions and removals at a fixed set size, skewed
// toward one hot node, where every task's terms are served from the
// analyzer's cache. -min-warm-speedup N fails the process if warm
// probes are not N× faster than the cold fill; see docs/SERVER.md.
//
// -cluster drives an rtmdm-gateway fronting -cluster-shards rtmdm-serve
// instances with a fixed seed-deterministic workload: mixed tenants
// (-tenants gold=3,free=1 tags requests with X-Rtmdm-Tenant), hot-node
// probe skew, optional seed-driven shard-kill chaos (-chaos-rate,
// -chaos-cmd), optional deterministic transport-level fault injection
// (-chaos-http "drop-out=0.03,latency=0.15,latency-ms=25,..." — drops,
// delays, tampering and partitions derived from -seed), and a sorted
// per-shard admission log (-admit-log) that is byte-identical across
// same-seed runs; see cluster.go and docs/CLUSTER.md.
//
// -corpus SPEC ('smoke', 'default', or a spec file) draws the mixed
// phase's scenarios and the cluster fill's admission tasks from the
// generated scenario corpus (internal/corpus) instead of the
// hand-authored builders; selection is deterministic per (-seed, spec),
// so same-seed runs stay byte-identical. -corpus-count overrides the
// spec's scenario count. See docs/CORPUS.md.
//
// -json FILE writes a machine-readable report for any mode ('-' =
// stdout): totals, per-endpoint stats for the mixed phase, and the
// per-shard / per-tenant breakdown for cluster runs; the schema is
// documented in docs/SERVER.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rtmdm/internal/cluster"
)

// opStats is the shared latency/throughput block of the JSON report.
type opStats struct {
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	Shed     int     `json:"shed,omitempty"`
	Retries  int     `json:"retries,omitempty"`
	RPS      float64 `json:"rps"`
	P50Ms    float64 `json:"p50_ms"`
	P90Ms    float64 `json:"p90_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// shardReport breaks a cluster run down by owning shard.
type shardReport struct {
	Shard int `json:"shard"`
	Nodes int `json:"nodes"`
	opStats
}

// tenantReport breaks a cluster run down by tenant, with admission
// verdict counts so CI can assert weighted fairness.
type tenantReport struct {
	Tenant   string `json:"tenant"`
	Weight   int    `json:"weight"`
	Admitted int    `json:"admitted"`
	Rejected int    `json:"rejected"`
	Removed  int    `json:"removed"`
	opStats
}

// report is the -json output schema (documented in docs/SERVER.md).
type report struct {
	Mode         string             `json:"mode"`
	Seed         int64              `json:"seed,omitempty"`
	DurationS    float64            `json:"duration_s"`
	Total        opStats            `json:"total"`
	Endpoints    map[string]opStats `json:"endpoints,omitempty"`
	Shards       []shardReport      `json:"shards,omitempty"`
	Tenants      []tenantReport     `json:"tenants,omitempty"`
	CacheSpeedup float64            `json:"cache_speedup,omitempty"`
	WarmSpeedup  float64            `json:"warm_speedup,omitempty"`
	ChaosKills   int                `json:"chaos_kills,omitempty"`

	mixedErrors int // exit-status plumbing, not part of the schema
}

func writeReport(path string, rep *report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func decodeInto(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

func drainClose(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

type sample struct {
	endpoint string
	cache    string // X-Rtmdm-Cache header, "" for admit
	status   int
	latency  time.Duration
}

type collector struct {
	mu      sync.Mutex
	samples []sample
}

func (c *collector) add(s sample) {
	c.mu.Lock()
	c.samples = append(c.samples, s)
	c.mu.Unlock()
}

func percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(p / 100 * float64(len(sorted)))
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// client wraps the HTTP plumbing shared by all phases.
type client struct {
	base string
	http *http.Client
}

func (c *client) post(path, body string) (status int, cache string, latency time.Duration, err error) {
	start := time.Now()
	resp, err := c.http.Post(c.base+path, "application/json", strings.NewReader(body))
	latency = time.Since(start)
	if err != nil {
		return 0, "", latency, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("X-Rtmdm-Cache"), latency, nil
}

// admitResult is the slice of the admit response the generator inspects.
type admitResult struct {
	Admitted bool   `json:"admitted"`
	Removed  bool   `json:"removed"`
	Reason   string `json:"reason"`
}

// postAdmit posts an admission request and decodes the decision.
func (c *client) postAdmit(body string) (res admitResult, status int, latency time.Duration, err error) {
	start := time.Now()
	resp, err := c.http.Post(c.base+"/v1/admit", "application/json", strings.NewReader(body))
	latency = time.Since(start)
	if err != nil {
		return res, 0, latency, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		err = json.NewDecoder(resp.Body).Decode(&res)
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return res, resp.StatusCode, latency, err
}

// scenarioJSON builds a small two-task scenario whose identity varies
// with variant, so distinct variants are distinct cache keys. With
// -corpus, the scenario is drawn from the generated corpus instead
// (seed-deterministic per variant; see corpus.go).
func scenarioJSON(variant int) string {
	if corpusSrc != nil {
		if body, ok := corpusSrc.scenarioJSON(variant); ok {
			return body
		}
	}
	period := 40 + 2*(variant%20)
	return fmt.Sprintf(`{"horizon_ms": 200, "tasks": [
		{"name": "kws", "model": "ds-cnn", "period_ms": %d},
		{"name": "ae", "model": "autoencoder", "period_ms": %d}
	]}`, period, 2*period)
}

func analyzeBody(variant int) string {
	return fmt.Sprintf(`{"scenario": %s, "policies": ["rt-mdm", "serial-segfp"]}`, scenarioJSON(variant))
}

func simulateBody(variant int) string {
	return fmt.Sprintf(`{"scenario": %s}`, scenarioJSON(variant))
}

func admitBody(id uint64, node string, taskIdx int) string {
	if corpusSrc != nil {
		if body, ok := corpusSrc.admitTaskJSON(id, node, taskIdx, fmt.Sprintf("t%d", taskIdx)); ok {
			return body
		}
	}
	return fmt.Sprintf(`{"request_id": %d, "node": %q, "task": {
		"name": "t%d", "model": "lenet5", "period_ms": %d
	}}`, id, node, taskIdx, 80+5*(taskIdx%10))
}

func churnAddBody(id uint64, node, name string, periodMs float64) string {
	return fmt.Sprintf(`{"request_id": %d, "node": %q, "task": {
		"name": %q, "model": "tinymlp", "period_ms": %g
	}}`, id, node, name, periodMs)
}

func churnRemoveBody(id uint64, node, name string) string {
	return fmt.Sprintf(`{"request_id": %d, "node": %q, "remove": true, "task": {"name": %q}}`,
		id, node, name)
}

// runChurn measures the admission hot path end to end and returns the
// warm speedup (cold fill p50 / warm probe p50).
//
// Fill: each node commits tasksPerNode tasks in descending period order.
// Every fill admission evaluates the candidate at a set size the node
// has never seen, so the incremental analyzer's term caches cannot
// apply — the latencies are the cold baseline. Probe: an interleaved
// add/remove cycle (probe-a, probe-b added then removed) holds the
// evaluated set sizes fixed, so every task's terms — model build,
// segmentation, demand sums — are served from the cache; that reuse is
// the warm win. (Under the server's default rt-mdm policy the probe's
// RTA fixpoints still run cold: its segment budget depends on the task
// count, so committed bounds are not sound starts at a new set size.)
// Operations are skewed toward node 0 by hotFrac, exercising the term
// LRU under a realistic hot-node pattern.
func runChurn(c *client, nodes, tasksPerNode int, hotFrac float64, duration time.Duration) float64 {
	var reqID atomic.Uint64
	fail := func(op string, res admitResult, status int, err error) {
		fmt.Fprintf(os.Stderr, "rtmdm-loadgen: churn %s: status %d reason %q err %v\n",
			op, status, res.Reason, err)
		os.Exit(1)
	}

	var coldLat []time.Duration
	for j := 0; j < nodes; j++ {
		nodeName := fmt.Sprintf("churn-%d", j)
		for i := 0; i < tasksPerNode; i++ {
			period := float64(40 + 5*(tasksPerNode-1-i))
			name := fmt.Sprintf("t%02d", i)
			res, status, lat, err := c.postAdmit(churnAddBody(reqID.Add(1), nodeName, name, period))
			if err != nil || status != http.StatusOK || !res.Admitted {
				fail("fill "+nodeName+"/"+name, res, status, err)
			}
			coldLat = append(coldLat, lat)
		}
	}

	var warmLat, removeLat []time.Duration
	rejected := 0
	cycle := make([]int, nodes)
	rng := rand.New(rand.NewSource(1))
	stop := time.Now().Add(duration)
	for time.Now().Before(stop) {
		j := 0
		if nodes > 1 && rng.Float64() >= hotFrac {
			j = 1 + rng.Intn(nodes-1)
		}
		nodeName := fmt.Sprintf("churn-%d", j)
		var (
			res    admitResult
			status int
			lat    time.Duration
			err    error
		)
		switch cycle[j] % 4 {
		case 0, 1:
			name, period := "probe-a", 35.0
			if cycle[j]%4 == 1 {
				name, period = "probe-b", 30.0
			}
			res, status, lat, err = c.postAdmit(churnAddBody(reqID.Add(1), nodeName, name, period))
			if err != nil || status != http.StatusOK {
				fail("probe add "+nodeName, res, status, err)
			}
			if !res.Admitted {
				rejected++
			}
			warmLat = append(warmLat, lat)
		case 2, 3:
			name := "probe-a"
			if cycle[j]%4 == 3 {
				name = "probe-b"
			}
			res, status, lat, err = c.postAdmit(churnRemoveBody(reqID.Add(1), nodeName, name))
			if err != nil || status != http.StatusOK {
				fail("probe remove "+nodeName, res, status, err)
			}
			// A remove can miss if the matching add was rejected; the
			// cycle stays consistent either way.
			removeLat = append(removeLat, lat)
		}
		cycle[j]++
	}

	coldP50, warmP50 := percentile(coldLat, 50), percentile(warmLat, 50)
	fmt.Printf("churn fill : nodes=%d tasks=%d n=%d p50=%v p90=%v\n",
		nodes, tasksPerNode, len(coldLat), coldP50, percentile(coldLat, 90))
	fmt.Printf("churn probe: n=%d rejected=%d p50=%v p90=%v\n",
		len(warmLat), rejected, warmP50, percentile(warmLat, 90))
	fmt.Printf("churn rm   : n=%d p50=%v\n", len(removeLat), percentile(removeLat, 50))
	if warmP50 <= 0 || len(coldLat) == 0 {
		fmt.Println("warm speedup: n/a")
		return 0
	}
	speedup := float64(coldP50) / float64(warmP50)
	fmt.Printf("warm speedup: %.1fx (cold fill p50 %v / warm probe p50 %v)\n",
		speedup, coldP50, warmP50)
	return speedup
}

func parseMix(spec string) (map[string]int, error) {
	mix := map[string]int{}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad mix entry %q", part)
		}
		w, err := strconv.Atoi(kv[1])
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad mix weight %q", part)
		}
		switch kv[0] {
		case "analyze", "simulate", "admit":
			mix[kv[0]] = w
		default:
			return nil, fmt.Errorf("unknown endpoint %q in mix", kv[0])
		}
	}
	return mix, nil
}

func waitHealthy(c *client, deadline time.Duration) error {
	until := time.Now().Add(deadline)
	for time.Now().Before(until) {
		resp, err := c.http.Get(c.base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("server at %s not healthy after %v", c.base, deadline)
}

func main() {
	var (
		url         = flag.String("url", "http://localhost:8080", "rtmdm-serve base URL")
		concurrency = flag.Int("concurrency", 8, "mixed-phase worker count")
		duration    = flag.Duration("duration", 10*time.Second, "mixed-phase length")
		mixSpec     = flag.String("mix", "analyze=4,simulate=4,admit=2", "endpoint weights")
		cold        = flag.Int("cold", 16, "distinct scenarios in the calibration phase")
		quick       = flag.Bool("quick", false, "CI smoke preset: -concurrency 4 -duration 2s -cold 8")
		minSpeedup  = flag.Float64("min-speedup", 0, "fail unless cache speedup (cold p50 / hit p50) reaches this factor")
		reqTimeout  = flag.Duration("request-timeout", 30*time.Second, "per-request client timeout")
		healthWait  = flag.Duration("health-wait", 10*time.Second, "how long to wait for /healthz")

		churn      = flag.Bool("churn", false, "run the admission churn phase instead of calibrate+mixed")
		churnNodes = flag.Int("churn-nodes", 4, "admission nodes in the churn phase")
		churnTasks = flag.Int("churn-tasks", 16, "tasks committed per node by the churn fill")
		hotFrac    = flag.Float64("hot-frac", 0.7, "fraction of churn operations aimed at the hot node")
		minWarm    = flag.Float64("min-warm-speedup", 0, "fail unless warm admission speedup (cold fill p50 / warm probe p50) reaches this factor")

		clusterMode  = flag.Bool("cluster", false, "drive an rtmdm-gateway cluster with a fixed seed-deterministic workload")
		clusterShard = flag.Int("cluster-shards", 0, "shard count behind the gateway, mirrors its ring (required with -cluster)")
		clusterRepl  = flag.Int("cluster-replicas", 64, "virtual ring points per shard (must match the gateway's -replicas)")
		clusterNodes = flag.Int("cluster-nodes", 24, "admission nodes in the cluster workload")
		clusterFill  = flag.Int("cluster-fill", 6, "tasks committed per node by the cluster fill")
		clusterProbe = flag.Int("cluster-probes", 4, "probe add/remove cycles per cold node (hot nodes run 4x)")
		hotNodes     = flag.Float64("hot-nodes", 0.125, "fraction of nodes receiving the hot probe boost")
		seed         = flag.Int64("seed", 1, "cluster workload seed (probe periods, chaos decisions)")
		tenantsSpec  = flag.String("tenants", "", "tenant weights name=w,... for the cluster mix (empty = untagged)")
		admitLog     = flag.String("admit-log", "", "write the sorted per-shard admission log to FILE")
		chaosRate    = flag.Float64("chaos-rate", 0, "per-tick probability of a seed-driven shard kill")
		chaosCmd     = flag.String("chaos-cmd", "", "shell command run on each chaos kill; {shard} is substituted")
		chaosTick    = flag.Duration("chaos-interval", 500*time.Millisecond, "chaos decision tick")
		chaosHTTP    = flag.String("chaos-http", "", "deterministic transport fault spec, e.g. drop-out=0.03,drop-in=0.03,latency=0.15,latency-ms=25,truncate=0.02,corrupt=0.02,partition=FROM-TO:DIR[:HOST]")
		corpusSpec   = flag.String("corpus", "", "draw scenarios/tasks from a generated corpus: 'smoke', 'default', or a spec file (seed-deterministic; see docs/CORPUS.md)")
		corpusCount  = flag.Int("corpus-count", 0, "override the corpus spec's scenario count")
		jsonOut      = flag.String("json", "", "write a JSON report to FILE ('-' = stdout)")
	)
	flag.Parse()
	if *quick {
		*concurrency, *duration, *cold = 4, 2*time.Second, 8
		*churnNodes, *churnTasks = 2, 8
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtmdm-loadgen:", err)
		os.Exit(2)
	}

	if *corpusSpec != "" {
		src, cerr := newCorpusSource(*corpusSpec, *corpusCount, *seed)
		if cerr != nil {
			fmt.Fprintln(os.Stderr, "rtmdm-loadgen:", cerr)
			os.Exit(2)
		}
		corpusSrc = src
		fmt.Printf("rtmdm-loadgen: corpus traffic on (spec %.12s…, %d scenarios, seed %d)\n",
			src.gen.Digest(), src.gen.Count(), *seed)
	}

	c := &client{base: strings.TrimRight(*url, "/"), http: &http.Client{Timeout: *reqTimeout}}
	if *chaosHTTP != "" {
		ccfg, cerr := cluster.ParseChaosSpec(*chaosHTTP)
		if cerr != nil {
			fmt.Fprintln(os.Stderr, "rtmdm-loadgen:", cerr)
			os.Exit(2)
		}
		ccfg.Seed = *seed
		transport, cerr := cluster.NewChaosTransport(ccfg, nil)
		if cerr != nil {
			fmt.Fprintln(os.Stderr, "rtmdm-loadgen:", cerr)
			os.Exit(2)
		}
		c.http.Transport = transport
		fmt.Printf("rtmdm-loadgen: chaos transport on (seed %d): %s\n", *seed, *chaosHTTP)
	}
	if err := waitHealthy(c, *healthWait); err != nil {
		fmt.Fprintln(os.Stderr, "rtmdm-loadgen:", err)
		os.Exit(1)
	}
	fmt.Printf("rtmdm-loadgen: target %s\n", c.base)

	rep := &report{Mode: "mixed"}
	emit := func() {
		if *jsonOut == "" {
			return
		}
		if err := writeReport(*jsonOut, rep); err != nil {
			fmt.Fprintln(os.Stderr, "rtmdm-loadgen: write report:", err)
			os.Exit(1)
		}
	}

	if *clusterMode {
		if *clusterShard <= 0 {
			fmt.Fprintln(os.Stderr, "rtmdm-loadgen: -cluster requires -cluster-shards > 0")
			os.Exit(2)
		}
		weights, err := cluster.ParseTenantWeights(*tenantsSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtmdm-loadgen:", err)
			os.Exit(2)
		}
		clusterFillOps = *clusterFill
		err = runCluster(c, clusterCfg{
			shards:      *clusterShard,
			replicas:    *clusterRepl,
			nodes:       *clusterNodes,
			fill:        *clusterFill,
			probes:      *clusterProbe,
			hotNodes:    *hotNodes,
			seed:        *seed,
			weights:     weights,
			concurrency: *concurrency,
			logPath:     *admitLog,
			chaosRate:   *chaosRate,
			chaosCmd:    *chaosCmd,
			chaosTick:   *chaosTick,
		}, rep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtmdm-loadgen: cluster:", err)
			os.Exit(1)
		}
		printClusterSummary(rep)
		emit()
		return
	}

	if *churn {
		rep.Mode = "churn"
		warmSpeedup := runChurn(c, *churnNodes, *churnTasks, *hotFrac, *duration)
		rep.WarmSpeedup = warmSpeedup
		emit()
		if *minWarm > 0 && warmSpeedup < *minWarm {
			fmt.Fprintf(os.Stderr, "rtmdm-loadgen: warm admission speedup %.1fx below required %.1fx\n",
				warmSpeedup, *minWarm)
			os.Exit(1)
		}
		return
	}

	speedup := calibrate(c, *cold)
	rep.CacheSpeedup = speedup
	runMixed(c, mix, *concurrency, *duration, rep)
	emit()

	if rep.mixedErrors > 0 {
		os.Exit(1)
	}
	if *minSpeedup > 0 && speedup < *minSpeedup {
		fmt.Fprintf(os.Stderr, "rtmdm-loadgen: cache speedup %.1fx below required %.1fx\n", speedup, *minSpeedup)
		os.Exit(1)
	}
}

// calibrate measures the cold (miss) and hot (hit) analyze paths and
// returns the p50 speedup factor.
func calibrate(c *client, cold int) float64 {
	var coldLat, hotLat []time.Duration
	for i := 0; i < cold; i++ {
		status, cache, lat, err := c.post("/v1/analyze", analyzeBody(i))
		if err != nil || status != http.StatusOK {
			fmt.Fprintf(os.Stderr, "rtmdm-loadgen: cold analyze %d: status %d err %v\n", i, status, err)
			os.Exit(1)
		}
		if cache == "miss" {
			coldLat = append(coldLat, lat)
		}
	}
	const hotRounds = 5
	for r := 0; r < hotRounds; r++ {
		for i := 0; i < cold; i++ {
			status, cache, lat, err := c.post("/v1/analyze", analyzeBody(i))
			if err != nil || status != http.StatusOK {
				fmt.Fprintf(os.Stderr, "rtmdm-loadgen: hot analyze %d: status %d err %v\n", i, status, err)
				os.Exit(1)
			}
			if cache == "hit" {
				hotLat = append(hotLat, lat)
			}
		}
	}
	coldP50, hotP50 := percentile(coldLat, 50), percentile(hotLat, 50)
	fmt.Printf("cold analyze: n=%d p50=%v p90=%v\n", len(coldLat), coldP50, percentile(coldLat, 90))
	fmt.Printf("hot  analyze: n=%d p50=%v p90=%v\n", len(hotLat), hotP50, percentile(hotLat, 90))
	if hotP50 <= 0 || len(coldLat) == 0 {
		fmt.Println("cache speedup: n/a")
		return 0
	}
	speedup := float64(coldP50) / float64(hotP50)
	fmt.Printf("cache speedup: %.1fx (cold p50 %v / hit p50 %v)\n", speedup, coldP50, hotP50)
	return speedup
}

// runMixed fires the weighted endpoint mix from concurrent workers for
// the configured duration, prints the per-endpoint report, and fills
// rep's endpoint breakdown.
func runMixed(c *client, mix map[string]int, concurrency int, duration time.Duration, rep *report) {
	var endpoints []string
	for _, ep := range []string{"analyze", "simulate", "admit"} {
		for i := 0; i < mix[ep]; i++ {
			endpoints = append(endpoints, ep)
		}
	}
	if len(endpoints) == 0 {
		fmt.Println("mixed phase: empty mix, skipped")
		return
	}

	col := &collector{}
	var reqID atomic.Uint64
	stop := time.Now().Add(duration)
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			node := fmt.Sprintf("node-%d", w)
			taskIdx := 0
			for time.Now().Before(stop) {
				ep := endpoints[rng.Intn(len(endpoints))]
				variant := rng.Intn(24)
				var status int
				var cache string
				var lat time.Duration
				var err error
				switch ep {
				case "analyze":
					status, cache, lat, err = c.post("/v1/analyze", analyzeBody(variant))
				case "simulate":
					status, cache, lat, err = c.post("/v1/simulate", simulateBody(variant))
				case "admit":
					taskIdx++
					status, cache, lat, err = c.post("/v1/admit", admitBody(reqID.Add(1), node, taskIdx))
				}
				if err != nil {
					status = 0
				}
				col.add(sample{endpoint: ep, cache: cache, status: status, latency: lat})
			}
		}(w)
	}
	wg.Wait()

	fmt.Printf("mixed phase: %v, %d workers\n", duration, concurrency)
	secs := duration.Seconds()
	if secs <= 0 {
		secs = 1
	}
	rep.DurationS = secs
	rep.Endpoints = map[string]opStats{}
	total, errors := 0, 0
	var allLats []time.Duration
	for _, ep := range []string{"analyze", "simulate", "admit"} {
		var lats []time.Duration
		n, errs, shed := 0, 0, 0
		states := map[string]int{}
		for _, s := range col.samples {
			if s.endpoint != ep {
				continue
			}
			n++
			switch {
			case s.status == http.StatusTooManyRequests:
				shed++
			case s.status != http.StatusOK:
				errs++
			default:
				lats = append(lats, s.latency)
				if s.cache != "" {
					states[s.cache]++
				}
			}
		}
		total += n
		errors += errs
		allLats = append(allLats, lats...)
		if n == 0 {
			continue
		}
		rep.Endpoints[ep] = opStats{
			Requests: n, Errors: errs, Shed: shed,
			RPS:   float64(n) / secs,
			P50Ms: msOf(percentile(lats, 50)),
			P90Ms: msOf(percentile(lats, 90)),
			P99Ms: msOf(percentile(lats, 99)),
		}
		fmt.Printf("  %-8s n=%-5d err=%-3d shed=%-3d p50=%-10v p90=%-10v p99=%v\n",
			ep, n, errs, shed, percentile(lats, 50), percentile(lats, 90), percentile(lats, 99))
		if len(states) > 0 {
			fmt.Printf("  %-8s cache: hit=%d miss=%d coalesced=%d\n",
				"", states["hit"], states["miss"], states["coalesced"])
		}
	}
	rep.Total = opStats{
		Requests: total, Errors: errors,
		RPS:   float64(total) / secs,
		P50Ms: msOf(percentile(allLats, 50)),
		P90Ms: msOf(percentile(allLats, 90)),
		P99Ms: msOf(percentile(allLats, 99)),
	}
	fmt.Printf("total: %d requests in %v (%.1f req/s), %d errors\n",
		total, duration, float64(total)/secs, errors)
	rep.mixedErrors = errors
}
