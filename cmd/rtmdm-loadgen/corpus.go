// Corpus-backed traffic: -corpus <spec> swaps the hand-authored
// scenario/task builders for instances drawn from a generated scenario
// corpus (internal/corpus), so serve and cluster load reflects the same
// axis diversity the differential harness sweeps. Selection is
// seed-deterministic: variant v always maps to the same corpus index
// for a given (-seed, spec), so same-seed runs stay byte-identical.
package main

import (
	"encoding/json"
	"fmt"

	"rtmdm/internal/corpus"
	"rtmdm/internal/scenario"
)

// corpusSrc is set by main when -corpus is given; the body builders in
// main.go and the cluster fill schedule consult it.
var corpusSrc *corpusSource

type corpusSource struct {
	gen  *corpus.Generator
	seed int64
}

// newCorpusSource resolves the -corpus argument: the presets "smoke" /
// "default", or a spec file path. count > 0 overrides the spec's count.
func newCorpusSource(arg string, count int, seed int64) (*corpusSource, error) {
	var spec *corpus.Spec
	var err error
	switch arg {
	case "smoke":
		spec = corpus.SmokeSpec()
	case "default":
		spec = corpus.DefaultSpec()
	default:
		spec, err = corpus.LoadSpec(arg)
		if err != nil {
			return nil, err
		}
	}
	if count > 0 {
		spec.Count = count
	}
	gen, err := corpus.NewGenerator(spec)
	if err != nil {
		return nil, err
	}
	return &corpusSource{gen: gen, seed: seed}, nil
}

// cmixv is the splitmix64 finalizer (mirrors internal/corpus).
func cmixv(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// instance maps a variant onto a corpus item, walking forward past the
// rare indices whose axis draw has no feasible workload.
func (s *corpusSource) instance(variant int) (corpus.Item, bool) {
	n := s.gen.Count()
	idx := int(cmixv(uint64(s.seed) ^ uint64(variant)*0x9e3779b97f4a7c15) % uint64(n))
	for k := 0; k < 4; k++ {
		it, err := s.gen.At((idx + k) % n)
		if err == nil {
			return it, true
		}
	}
	return corpus.Item{}, false
}

// scenarioJSON renders the corpus scenario for a variant. Falls back to
// the hand-authored builder when no nearby index generates.
func (s *corpusSource) scenarioJSON(variant int) (string, bool) {
	it, ok := s.instance(variant)
	if !ok {
		return "", false
	}
	data, err := json.Marshal(it.Scenario)
	if err != nil {
		return "", false
	}
	return string(data), true
}

// admitTask draws one task from the variant's corpus scenario for
// admission traffic, renamed so per-node task sets keep unique names.
// Offsets are cleared: admission sets are long-lived, not phased runs.
func (s *corpusSource) admitTask(variant int, name string) (scenario.TaskSpec, bool) {
	it, ok := s.instance(variant)
	if !ok || len(it.Scenario.Tasks) == 0 {
		return scenario.TaskSpec{}, false
	}
	t := it.Scenario.Tasks[int(cmixv(uint64(variant)*0xe7037ed1a0b428db)%uint64(len(it.Scenario.Tasks)))]
	t.Name = name
	t.OffsetMs = 0
	return t, true
}

// admitTaskJSON marshals an admission request around a corpus-drawn
// task.
func (s *corpusSource) admitTaskJSON(id uint64, node string, variant int, name string) (string, bool) {
	t, ok := s.admitTask(variant, name)
	if !ok {
		return "", false
	}
	task, err := json.Marshal(t)
	if err != nil {
		return "", false
	}
	return fmt.Sprintf(`{"request_id": %d, "node": %q, "task": %s}`, id, node, task), true
}
