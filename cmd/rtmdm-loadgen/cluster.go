// cluster.go implements rtmdm-loadgen's -cluster mode: a fixed-work,
// seed-deterministic drive of an rtmdm-gateway fronting N rtmdm-serve
// shards. Every admission a node will see — fill tasks, probe
// add/remove cycles, their periods — is a pure function of (seed, node),
// issued strictly in per-node sequence order, so the sorted admission
// log is byte-identical across runs with the same seed and shard count
// even under retries, shard restarts, and arbitrary cross-node
// interleaving. Chaos (shard kills via -chaos-cmd) follows the same
// deterministic hash-decision style as internal/fault: which tick kills
// which shard is drawn from the seed, never from a sequential RNG
// consumed by racing goroutines.
package main

import (
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rtmdm/internal/cluster"
)

// clusterCfg collects the -cluster* flags.
type clusterCfg struct {
	shards      int // ring size mirrored from the gateway (-cluster-shards)
	replicas    int
	nodes       int
	fill        int     // tasks committed per node
	probes      int     // probe add/remove cycles per cold node
	hotNodes    float64 // fraction of nodes receiving hotBoost× probes
	seed        int64
	weights     map[string]int // tenant -> weight; nil = untagged requests
	concurrency int
	logPath     string
	chaosRate   float64 // per-tick kill probability
	chaosCmd    string  // command template, {shard} substituted
	chaosTick   time.Duration
}

// hotBoost is the probe-cycle multiplier for hot nodes: the skew the
// gateway's per-shard lanes must absorb without starving cold nodes.
const hotBoost = 4

// cmix is the splitmix64 finalizer (same mixer as internal/fault).
func cmix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// cdraw hashes one decision point (seed, domain string, two indices)
// into a uniform uint64, mirroring internal/fault's draw: every random
// choice is an independent hash of its coordinates, so concurrent
// workers never contend for — or reorder — a shared random stream.
func cdraw(seed int64, domain string, a, b int64) uint64 {
	h := cmix(uint64(seed)*0x9e3779b97f4a7c15 + 0x636c7573746572) // "cluster"
	for i := 0; i < len(domain); i++ {
		h = (h ^ uint64(domain[i])) * 1099511628211 // FNV-1a step
	}
	h = cmix(h ^ uint64(a)*0xa24baed4963ee407)
	h = cmix(h ^ uint64(b)*0x9fb21c651e98df25)
	return h
}

// cunit maps a hash to a uniform float in [0, 1).
func cunit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// tenantFor assigns a node to a tenant, weighted by the configured
// tenant weights. The draw is seed-independent so the tenant mix — and
// with it the fairness ratios CI asserts on — depends only on the node
// names and the weight table.
func tenantFor(node string, weights map[string]int) string {
	if len(weights) == 0 {
		return ""
	}
	names := make([]string, 0, len(weights))
	sum := 0
	for name, w := range weights {
		names = append(names, name)
		sum += w
	}
	sort.Strings(names)
	pick := int(cdraw(0, "tenant:"+node, 0, 0) % uint64(sum))
	for _, name := range names {
		pick -= weights[name]
		if pick < 0 {
			return name
		}
	}
	return names[len(names)-1]
}

// clusterOp is one step of a node's deterministic admission schedule.
type clusterOp struct {
	seq    int
	kind   string // "add" | "remove"
	task   string
	period float64
	// model overrides the default fill model ("" = tinymlp); set when
	// -corpus draws the fill tasks from generated scenarios.
	model string
}

// nodeSchedule derives node idx's full operation list from the seed:
// a fill phase committing cfg.fill tasks in descending period order
// (all admissible, matching the churn mode's feasible ladder), then
// probe cycles whose candidate periods are drawn per (seed, node,
// cycle) — tight enough that some are rejected, so the log exercises
// both verdicts. Hot nodes (the first hotNodes fraction) run hotBoost×
// as many cycles.
func nodeSchedule(cfg clusterCfg, idx int, node string) []clusterOp {
	var ops []clusterOp
	seq := 0
	push := func(kind, task string, period float64) {
		ops = append(ops, clusterOp{seq: seq, kind: kind, task: task, period: period})
		seq++
	}
	for f := 0; f < cfg.fill; f++ {
		name := fmt.Sprintf("t%02d", f)
		period := float64(40 + 5*(cfg.fill-1-f))
		// With -corpus the fill tasks come from generated scenarios:
		// model and period drawn per (seed, node, slot), so same-seed
		// admit logs stay byte-identical while the committed sets
		// reflect real corpus mixes (rejections are legitimate outcomes
		// here, unlike the always-admissible default ladder).
		if corpusSrc != nil {
			if t, ok := corpusSrc.admitTask(idx*257+f, name); ok {
				ops = append(ops, clusterOp{seq: seq, kind: "add", task: name, period: t.PeriodMs, model: t.Model})
				seq++
				continue
			}
		}
		push("add", name, period)
	}
	cycles := cfg.probes
	if float64(idx) < cfg.hotNodes*float64(cfg.nodes) {
		cycles *= hotBoost
	}
	for cyc := 0; cyc < cycles; cyc++ {
		period := 24 + float64(cdraw(cfg.seed, "probe:"+node, int64(cyc), 0)%14)
		push("add", "probe", period)
		push("remove", "probe", 0)
	}
	return ops
}

// clusterSample is one completed operation with its routing labels.
type clusterSample struct {
	node    string
	tenant  string
	shard   int
	seq     int
	kind    string
	outcome string
	lat     time.Duration
	retries int
}

// clusterAdmit posts one admission through the gateway, retrying
// transport errors and retryable statuses (429/502/503/504) with
// doubling backoff. Retries are how the generator rides out quota
// pushback, degraded shards, and chaos restarts; attempts is returned
// so the caller can normalize duplicate-delivery outcomes.
func clusterAdmit(c *client, body, tenant string, deadline time.Duration) (res admitResult, attempts int, lat time.Duration, err error) {
	backoff := 100 * time.Millisecond
	until := time.Now().Add(deadline)
	for {
		attempts++
		req, rerr := http.NewRequest(http.MethodPost, c.base+"/v1/admit", strings.NewReader(body))
		if rerr != nil {
			return res, attempts, 0, rerr
		}
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set(cluster.TenantHeader, tenant)
		}
		start := time.Now()
		resp, derr := c.http.Do(req)
		lat = time.Since(start)
		if derr == nil {
			status := resp.StatusCode
			if status == http.StatusOK {
				if err = decodeInto(resp, &res); err == nil {
					return res, attempts, lat, nil
				}
				// A 200 whose body does not parse is a tampered or
				// truncated response (the chaos transport guarantees
				// corruption always breaks JSON framing): retry it like
				// a transport error — the server committed, so the
				// duplicate-delivery normalization absorbs the repeat.
			} else {
				drainClose(resp)
				if !clusterRetryable(status) {
					return res, attempts, lat, fmt.Errorf("status %d", status)
				}
			}
		}
		if time.Now().After(until) {
			if derr != nil {
				return res, attempts, lat, fmt.Errorf("retries exhausted: %w", derr)
			}
			return res, attempts, lat, fmt.Errorf("retries exhausted after %d attempts", attempts)
		}
		time.Sleep(backoff)
		if backoff < 800*time.Millisecond {
			backoff *= 2
		}
	}
}

func clusterRetryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// runCluster executes the full deterministic schedule against the
// gateway and fills rep with the per-shard / per-tenant breakdown.
// Returns an error only for non-deterministic failures (hard HTTP
// errors, retry exhaustion, outcome contradictions).
func runCluster(c *client, cfg clusterCfg, rep *report) error {
	ring, err := cluster.NewRing(cfg.shards, cfg.replicas)
	if err != nil {
		return err
	}

	type nodeWork struct {
		name   string
		tenant string
		shard  int
		ops    []clusterOp
	}
	work := make([]nodeWork, cfg.nodes)
	for i := range work {
		name := fmt.Sprintf("cn-%03d", i)
		work[i] = nodeWork{
			name:   name,
			tenant: tenantFor(name, cfg.weights),
			shard:  ring.Shard(name),
			ops:    nodeSchedule(cfg, i, name),
		}
	}

	chaosStop, chaosKills := startChaos(cfg)
	defer chaosStop()

	col := struct {
		sync.Mutex
		samples []clusterSample
	}{}
	errCh := make(chan error, cfg.concurrency)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.concurrency; w++ {
		var mine []nodeWork
		for i := w; i < len(work); i += cfg.concurrency {
			mine = append(mine, work[i])
		}
		if len(mine) == 0 {
			continue
		}
		wg.Add(1)
		go func(mine []nodeWork) {
			defer wg.Done()
			// Round-robin across owned nodes so a hot node's long
			// schedule does not serialize behind its siblings; within a
			// node, ops run strictly in seq order (the determinism
			// contract: each node's decisions depend only on its own
			// history).
			admitted := make(map[string]bool, len(mine)) // node -> last add verdict
			for round := 0; ; round++ {
				busy := false
				for _, nw := range mine {
					if round >= len(nw.ops) {
						continue
					}
					busy = true
					op := nw.ops[round]
					s, err := runClusterOp(c, nw.name, nw.tenant, nw.shard, op, admitted)
					if err != nil {
						select {
						case errCh <- fmt.Errorf("%s seq %d: %w", nw.name, op.seq, err):
						default:
						}
						return
					}
					col.Lock()
					col.samples = append(col.samples, s)
					col.Unlock()
				}
				if !busy {
					return
				}
			}
		}(mine)
	}
	wg.Wait()
	wall := time.Since(start)
	chaosStop()
	select {
	case err := <-errCh:
		return err
	default:
	}

	if cfg.logPath != "" {
		if err := writeAdmitLog(cfg.logPath, col.samples); err != nil {
			return err
		}
	}
	fillClusterReport(rep, cfg, col.samples, wall, int(chaosKills.Load()))
	return nil
}

// runClusterOp issues one schedule step and maps the response to a
// deterministic outcome string. Duplicate deliveries caused by retries
// ("already committed" on an add, "not committed" on a remove whose add
// was admitted) normalize to the first-delivery outcome; the same
// responses without a retry in flight are contradictions and fail the
// run.
func runClusterOp(c *client, node, tenant string, shard int, op clusterOp, admitted map[string]bool) (clusterSample, error) {
	var body string
	if op.kind == "add" {
		if op.model != "" {
			body = fmt.Sprintf(`{"request_id": %d, "node": %q, "task": {"name": %q, "model": %q, "period_ms": %g}}`,
				op.seq+1, node, op.task, op.model, op.period)
		} else {
			body = churnAddBody(uint64(op.seq+1), node, op.task, op.period)
		}
	} else {
		body = churnRemoveBody(uint64(op.seq+1), node, op.task)
	}
	res, attempts, lat, err := clusterAdmit(c, body, tenant, 30*time.Second)
	if err != nil {
		return clusterSample{}, err
	}
	s := clusterSample{
		node: node, tenant: tenant, shard: shard,
		seq: op.seq, kind: op.kind, lat: lat, retries: attempts - 1,
	}
	switch op.kind {
	case "add":
		switch {
		case res.Admitted:
			s.outcome = "admitted"
		case attempts > 1 && strings.Contains(res.Reason, "already committed"):
			s.outcome = "admitted" // retry duplicate: first delivery won
		default:
			s.outcome = "rejected"
		}
		admitted[node] = s.outcome == "admitted"
	case "remove":
		wasAdmitted := admitted[node]
		switch {
		case res.Removed:
			s.outcome = "removed"
		case !wasAdmitted:
			s.outcome = "noop" // matching add was rejected; nothing to remove
		case attempts > 1 && strings.Contains(res.Reason, "not committed"):
			s.outcome = "removed" // retry duplicate of a successful remove
		default:
			return s, fmt.Errorf("remove of admitted task failed: %q", res.Reason)
		}
	}
	return s, nil
}

// startChaos launches the seed-driven shard-kill loop when -chaos-cmd
// and -chaos-rate are set: at tick t, kill shard (draw % shards) iff
// unit(draw(seed, "chaos", t)) < rate. The victim sequence is a pure
// function of the seed; only the wall-clock moment each kill lands
// varies, which the determinism contract tolerates by construction.
func startChaos(cfg clusterCfg) (stop func(), kills *atomic.Int64) {
	kills = &atomic.Int64{}
	if cfg.chaosCmd == "" || cfg.chaosRate <= 0 {
		return func() {}, kills
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		for tick := int64(0); ; tick++ {
			select {
			case <-done:
				return
			case <-time.After(cfg.chaosTick):
			}
			h := cdraw(cfg.seed, "chaos", tick, 0)
			if cunit(h) >= cfg.chaosRate {
				continue
			}
			victim := int(cmix(h) % uint64(cfg.shards))
			cmdline := strings.ReplaceAll(cfg.chaosCmd, "{shard}", fmt.Sprint(victim))
			out, err := exec.Command("sh", "-c", cmdline).CombinedOutput()
			if err != nil {
				fmt.Fprintf(os.Stderr, "rtmdm-loadgen: chaos %q: %v\n%s", cmdline, err, out)
				continue
			}
			kills.Add(1)
			fmt.Printf("rtmdm-loadgen: chaos killed shard %d (tick %d)\n", victim, tick)
		}
	}()
	return func() { once.Do(func() { close(done) }) }, kills
}

// writeAdmitLog writes the sorted admission log: one line per op, keyed
// (shard, node, seq). With a fixed seed and shard count the file is
// byte-identical across runs — the cluster smoke diffs two runs to
// prove per-shard determinism under fan-out, retries, and chaos.
func writeAdmitLog(path string, samples []clusterSample) error {
	lines := make([]string, len(samples))
	for i, s := range samples {
		lines[i] = fmt.Sprintf("shard=%02d node=%s seq=%03d op=%-6s task=%s outcome=%s",
			s.shard, s.node, s.seq, s.kind, taskOf(s), s.outcome)
	}
	sort.Strings(lines)
	return os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644)
}

// taskOf recovers the task label for the log line from the sample's
// position in its node's schedule (fill adds are t%02d, probes are
// "probe"), keeping the log self-describing without widening the
// sample struct.
func taskOf(s clusterSample) string {
	if s.kind == "add" && s.seq < clusterFillOps {
		return fmt.Sprintf("t%02d", s.seq)
	}
	return "probe"
}

// clusterFillOps is set by main before runCluster so taskOf can tell
// fill adds from probe ops without re-deriving schedules.
var clusterFillOps int

// fillClusterReport aggregates samples into the JSON report's total,
// per-shard, and per-tenant sections.
func fillClusterReport(rep *report, cfg clusterCfg, samples []clusterSample, wall time.Duration, chaosKills int) {
	rep.Mode = "cluster"
	rep.Seed = cfg.seed
	rep.DurationS = wall.Seconds()
	rep.ChaosKills = chaosKills
	rep.Total = statsOf(samples, wall)

	byShard := map[int][]clusterSample{}
	shardNodes := map[int]map[string]bool{}
	byTenant := map[string][]clusterSample{}
	for _, s := range samples {
		byShard[s.shard] = append(byShard[s.shard], s)
		if shardNodes[s.shard] == nil {
			shardNodes[s.shard] = map[string]bool{}
		}
		shardNodes[s.shard][s.node] = true
		byTenant[s.tenant] = append(byTenant[s.tenant], s)
	}
	for shard := 0; shard < cfg.shards; shard++ {
		rep.Shards = append(rep.Shards, shardReport{
			Shard:   shard,
			Nodes:   len(shardNodes[shard]),
			opStats: statsOf(byShard[shard], wall),
		})
	}
	tenants := make([]string, 0, len(byTenant))
	for t := range byTenant {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		tr := tenantReport{Tenant: t, Weight: cfg.weights[t], opStats: statsOf(byTenant[t], wall)}
		for _, s := range byTenant[t] {
			switch s.outcome {
			case "admitted":
				tr.Admitted++
			case "rejected":
				tr.Rejected++
			case "removed":
				tr.Removed++
			}
		}
		rep.Tenants = append(rep.Tenants, tr)
	}
}

// statsOf reduces a sample set to the shared opStats block.
func statsOf(samples []clusterSample, wall time.Duration) opStats {
	st := opStats{Requests: len(samples)}
	lats := make([]time.Duration, 0, len(samples))
	for _, s := range samples {
		st.Retries += s.retries
		lats = append(lats, s.lat)
	}
	if secs := wall.Seconds(); secs > 0 {
		st.RPS = float64(len(samples)) / secs
	}
	st.P50Ms = msOf(percentile(lats, 50))
	st.P90Ms = msOf(percentile(lats, 90))
	st.P99Ms = msOf(percentile(lats, 99))
	return st
}

func msOf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// printClusterSummary mirrors the report to stdout for interactive runs.
func printClusterSummary(rep *report) {
	fmt.Printf("cluster: %d ops in %.2fs (%.1f op/s), %d retries, %d chaos kills\n",
		rep.Total.Requests, rep.DurationS, rep.Total.RPS, rep.Total.Retries, rep.ChaosKills)
	for _, sr := range rep.Shards {
		fmt.Printf("  shard %d: nodes=%-3d n=%-5d p50=%.2fms p90=%.2fms\n",
			sr.Shard, sr.Nodes, sr.Requests, sr.P50Ms, sr.P90Ms)
	}
	for _, tr := range rep.Tenants {
		name := tr.Tenant
		if name == "" {
			name = "(untagged)"
		}
		fmt.Printf("  tenant %-10s w=%-2d n=%-5d admitted=%-4d rejected=%-4d p50=%.2fms\n",
			name, tr.Weight, tr.Requests, tr.Admitted, tr.Rejected, tr.P50Ms)
	}
}
