package main

import (
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// capture runs fn with os.Stdout redirected into a string.
func capture(t *testing.T, fn func() int) (int, string) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	code := fn()
	w.Close()
	return code, <-done
}

// TestCleanTree pins the dogfooding invariant: the repo's own packages
// carry no unsuppressed findings from any of the seven analyzers.
func TestCleanTree(t *testing.T) {
	code, out := capture(t, func() int { return runStandalone([]string{"./..."}, "text") })
	if code != 0 {
		t.Fatalf("rtmdm-lint ./... = %d, want 0; output:\n%s", code, out)
	}
}

// TestBrokenFixtureFailsEveryAnalyzer runs directory mode over a fixture
// holding one violation per analyzer and requires all seven to fire.
func TestBrokenFixtureFailsEveryAnalyzer(t *testing.T) {
	code, out := capture(t, func() int {
		return runStandalone([]string{filepath.Join("testdata", "brokentree")}, "text")
	})
	if code == 0 {
		t.Fatalf("rtmdm-lint testdata/brokentree = 0, want nonzero")
	}
	for _, a := range []string{"determinism", "millitime", "hotpathalloc", "metricname", "ctxflow", "lockhold", "goroleak"} {
		if !strings.Contains(out, "["+a+"]") {
			t.Errorf("no %s finding in output:\n%s", a, out)
		}
	}
}

// TestSeededClockFails is the acceptance check from the determinism
// analyzer's contract: introducing time.Now() into a simulation package
// must fail the lint run.
func TestSeededClockFails(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sim")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package sim\n\nimport \"time\"\n\nfunc Seed() int64 { return time.Now().UnixNano() }\n"
	if err := os.WriteFile(filepath.Join(dir, "seed.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out := capture(t, func() int { return runStandalone([]string{dir}, "text") })
	if code == 0 {
		t.Fatalf("seeding time.Now() passed the lint run; output:\n%s", out)
	}
	if !strings.Contains(out, "time.Now") {
		t.Errorf("finding does not name time.Now:\n%s", out)
	}
}

// goldenCompare diffs got against the golden file, rewriting it when
// -update is plumbed through via UPDATE_GOLDEN=1.
func goldenCompare(t *testing.T, golden, got string) {
	t.Helper()
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden %s (run with UPDATE_GOLDEN=1 to create): %v", golden, err)
	}
	if string(want) != got {
		t.Errorf("output differs from %s:\n--- want ---\n%s\n--- got ---\n%s", golden, want, got)
	}
}

// TestFormatJSONGolden pins the -format json encoding byte-for-byte:
// stable ordering, module-root-relative paths, a trailing count.
func TestFormatJSONGolden(t *testing.T) {
	code, out := capture(t, func() int {
		return runStandalone([]string{filepath.Join("testdata", "brokentree")}, "json")
	})
	if code == 0 {
		t.Fatalf("rtmdm-lint -format json testdata/brokentree = 0, want nonzero")
	}
	goldenCompare(t, filepath.Join("testdata", "golden", "brokentree.json"), out)
}

// TestFormatSARIFGolden pins the SARIF 2.1.0 encoding the CI lint job
// uploads: one run, the seven-rule catalogue, sorted results.
func TestFormatSARIFGolden(t *testing.T) {
	code, out := capture(t, func() int {
		return runStandalone([]string{filepath.Join("testdata", "brokentree")}, "sarif")
	})
	if code == 0 {
		t.Fatalf("rtmdm-lint -format sarif testdata/brokentree = 0, want nonzero")
	}
	goldenCompare(t, filepath.Join("testdata", "golden", "brokentree.sarif"), out)
}

// TestFormatSARIFCleanIsValid checks the zero-findings document still
// carries the runs/tool skeleton uploads require.
func TestFormatSARIFClean(t *testing.T) {
	code, out := capture(t, func() int { return runStandalone([]string{"./..."}, "sarif") })
	if code != 0 {
		t.Fatalf("rtmdm-lint -format sarif ./... = %d, want 0", code)
	}
	for _, frag := range []string{`"version": "2.1.0"`, `"name": "rtmdm-lint"`, `"results": []`} {
		if !strings.Contains(out, frag) {
			t.Errorf("clean SARIF output missing %s:\n%s", frag, out)
		}
	}
}

// auditedSuppressions is the reviewed inventory size: every //lint:allow
// in the module's non-testdata packages. A new suppression is a reviewed
// boundary crossing — update the pin in the same change that adds it.
// The six internal/corpus entries are the spec/scenario-file float-ms
// boundaries of the generator (docs/CORPUS.md).
const auditedSuppressions = 38

// TestSuppressionAudit pins the audited suppression inventory: every
// directive lists with file, analyzer and a non-empty reason, and the
// count matches the reviewed number above.
func TestSuppressionAudit(t *testing.T) {
	code, out := capture(t, func() int { return runSuppressionAudit() })
	if code != 0 {
		t.Fatalf("rtmdm-lint -suppressions = %d, want 0 (malformed directive in tree?); output:\n%s", code, out)
	}
	lineRe := regexp.MustCompile(`^[^:]+\.go:\d+: [a-z]+ -- \S.*$`)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	for _, l := range lines {
		if !lineRe.MatchString(l) {
			t.Errorf("audit line not in file:line: analyzer -- reason form: %q", l)
		}
	}
	if len(lines) != auditedSuppressions {
		t.Errorf("audit lists %d suppressions, want %d; update the pin when adding a reviewed //lint:allow\n%s",
			len(lines), auditedSuppressions, out)
	}
}

// TestVetToolProtocol drives the real vet driver protocol end to end:
// go vet invokes the built binary with -V=full, per-package config
// files, and .vetx fact files. The temp module's spawn package goes a
// forever-looping worker from its pump package, so the finding only
// appears if the NonTerminatingFact made the trip through pump's
// VetxOutput into spawn's PackageVetx.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	tool := filepath.Join(t.TempDir(), "rtmdm-lint")
	if out, err := exec.Command("go", "build", "-o", tool, ".").CombinedOutput(); err != nil {
		t.Fatalf("building vettool: %v\n%s", err, out)
	}

	mod := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(mod, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module vetproto\n\ngo 1.24\n")
	write("pump/pump.go", `package pump

// Forever loops with no termination path.
func Forever(ch chan int) {
	for {
		ch <- 1
	}
}
`)
	write("spawn/spawn.go", `package spawn

import "vetproto/pump"

// Go spawns the upstream worker; only cross-package facts can tell.
func Go(ch chan int) {
	go pump.Forever(ch)
}
`)
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = mod
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed, want goroleak finding; output:\n%s", out)
	}
	if !strings.Contains(string(out), "[goroleak]") || !strings.Contains(string(out), "pump.Forever") {
		t.Errorf("vet output missing the cross-package goroleak finding:\n%s", out)
	}
}
