package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs fn with os.Stdout redirected into a string.
func capture(t *testing.T, fn func() int) (int, string) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	code := fn()
	w.Close()
	return code, <-done
}

// TestCleanTree pins the dogfooding invariant: the repo's own packages
// carry no unsuppressed findings.
func TestCleanTree(t *testing.T) {
	code, out := capture(t, func() int { return runStandalone([]string{"./..."}) })
	if code != 0 {
		t.Fatalf("rtmdm-lint ./... = %d, want 0; output:\n%s", code, out)
	}
}

// TestBrokenFixtureFailsEveryAnalyzer runs directory mode over a fixture
// holding one violation per analyzer and requires all four to fire.
func TestBrokenFixtureFailsEveryAnalyzer(t *testing.T) {
	code, out := capture(t, func() int {
		return runStandalone([]string{filepath.Join("testdata", "brokentree")})
	})
	if code == 0 {
		t.Fatalf("rtmdm-lint testdata/brokentree = 0, want nonzero")
	}
	for _, a := range []string{"determinism", "millitime", "hotpathalloc", "metricname"} {
		if !strings.Contains(out, "["+a+"]") {
			t.Errorf("no %s finding in output:\n%s", a, out)
		}
	}
}

// TestSeededClockFails is the acceptance check from the determinism
// analyzer's contract: introducing time.Now() into a simulation package
// must fail the lint run.
func TestSeededClockFails(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sim")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package sim\n\nimport \"time\"\n\nfunc Seed() int64 { return time.Now().UnixNano() }\n"
	if err := os.WriteFile(filepath.Join(dir, "seed.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out := capture(t, func() int { return runStandalone([]string{dir}) })
	if code == 0 {
		t.Fatalf("seeding time.Now() passed the lint run; output:\n%s", out)
	}
	if !strings.Contains(out, "time.Now") {
		t.Errorf("finding does not name time.Now:\n%s", out)
	}
}
