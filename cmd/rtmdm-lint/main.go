// Command rtmdm-lint runs the repo's custom static analyzers
// (internal/lint) over the module: determinism, millitime, hotpathalloc,
// metricname, ctxflow, lockhold and goroleak. See
// docs/STATIC_ANALYSIS.md for the catalogue, the cross-package fact
// mechanism, and the //lint:allow suppression directive.
//
// Usage:
//
//	rtmdm-lint [-list] [-format text|json|sarif] [-suppressions] [packages|dirs]
//
// Arguments are either the "./..." pattern (the default — every package
// of the enclosing module) or directory paths, which are loaded without
// the go tool so testdata fixture packages can be linted too. Module
// packages are analyzed in dependency order with one shared fact store,
// so downstream packages see the facts (blocking, ambient-context,
// non-terminating) their imports exported. The determinism analyzer is
// scoped to the simulation-path packages and ctxflow to the service
// tier; the rest run everywhere. Directory arguments run the full
// suite, and a directory's immediate subdirectories are loaded first as
// dependency packages, so fixture trees exercise cross-package facts.
//
// -format selects the findings encoding: text (default,
// file:line:col: [analyzer] message), json (a stable sorted object),
// or sarif (SARIF 2.1.0, consumed by the CI upload that annotates PRs).
// -suppressions audits every //lint:allow directive in the module
// instead of linting: each is listed with its file, analyzer and
// reason, and a directive with an empty or missing reason fails the
// audit.
//
// The command is also usable as a vet tool:
//
//	go vet -vettool=$(command -v rtmdm-lint) ./...
//
// in which case it speaks the vet driver protocol (-V=full handshake,
// JSON config file) and persists each package's facts in its .vetx
// file, reading imports' facts back from theirs.
//
// Exit status: 0 when clean, 1 on findings, audit failures, or load
// errors.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"rtmdm/internal/lint"
)

// simPathSuffixes are the packages whose execution model must be
// deterministic: the kernel, the executor and everything that feeds the
// result tables. The determinism analyzer is enforced only here;
// harness-side packages (plot, cmd) may read clocks.
var simPathSuffixes = []string{
	"internal/sim", "internal/exec", "internal/core", "internal/trace",
	"internal/expr", "internal/workload", "internal/fault",
	"internal/scenario", "internal/dse", "internal/corpus",
}

// ctxPathSuffixes are the service-tier packages whose request paths
// must thread the incoming context (docs/SERVER.md, docs/CLUSTER.md).
// ctxflow is enforced only here; cmd mains legitimately construct their
// own root contexts.
var ctxPathSuffixes = []string{
	"internal/server", "internal/cluster",
}

func hasPathSuffix(importPath string, suffixes []string) bool {
	for _, s := range suffixes {
		if importPath == s || strings.HasSuffix(importPath, "/"+s) {
			return true
		}
	}
	return false
}

func isSimPath(importPath string) bool { return hasPathSuffix(importPath, simPathSuffixes) }
func isCtxPath(importPath string) bool { return hasPathSuffix(importPath, ctxPathSuffixes) }

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "print the analyzer catalogue and exit")
	format := flag.String("format", "text", "findings encoding: text, json, or sarif")
	suppressions := flag.Bool("suppressions", false, "audit //lint:allow directives instead of linting")
	vFlag := flag.String("V", "", "vet driver handshake (-V=full)")
	flagsQuery := flag.Bool("flags", false, "vet driver flag query (prints an empty set)")
	flag.Parse()

	if *vFlag != "" {
		// go vet's tool-ID handshake: the go command derives the tool's
		// build ID from this line and requires a buildID=<hex> field, so
		// hash the executable the way x/tools' analysisflags does.
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtmdm-lint:", err)
			return 1
		}
		data, err := os.ReadFile(exe)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtmdm-lint:", err)
			return 1
		}
		fmt.Printf("%s version devel comments-go-here buildID=%02x\n",
			filepath.Base(exe), sha256.Sum256(data))
		return 0
	}
	if *flagsQuery {
		// The vet driver's flag-definition query: a JSON array; this
		// tool exposes no per-analyzer flags.
		fmt.Println("[]")
		return 0
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, firstLine(a.Doc))
		}
		return 0
	}
	if *suppressions {
		return runSuppressionAudit()
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runVetTool(args[0])
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	return runStandalone(args, *format)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// finding is one rendered diagnostic, with the file path relative to
// the module root when possible so json/sarif output is stable across
// checkouts.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func runStandalone(args []string, format string) int {
	switch format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "rtmdm-lint: unknown -format %q (want text, json, or sarif)\n", format)
		return 1
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtmdm-lint:", err)
		return 1
	}
	lint.MetricCatalog, err = loadCatalog(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtmdm-lint:", err)
		return 1
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtmdm-lint:", err)
		return 1
	}

	store := lint.NewFactStore(lint.All())
	var findings []finding
	for _, arg := range args {
		switch {
		case arg == "./...":
			// Dependency order: every package is analyzed after its
			// imports, so the fact store always holds upstream facts.
			for _, path := range loader.RootsTopo() {
				pkg, err := loader.LoadImportPath(path)
				if err != nil {
					fmt.Fprintln(os.Stderr, "rtmdm-lint:", err)
					return 1
				}
				fs, err := collect(root, pkg, store, keepFor(path))
				if err != nil {
					fmt.Fprintln(os.Stderr, "rtmdm-lint:", err)
					return 1
				}
				findings = append(findings, fs...)
			}
		case isDir(arg):
			// Directory mode: load without the go tool (works for
			// testdata fixtures) and run the full suite. Immediate
			// subdirectories load first as dependency packages.
			abs, err := filepath.Abs(arg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rtmdm-lint:", err)
				return 1
			}
			base := "rtmdm-lint-fixture/" + filepath.Base(abs)
			for _, dir := range fixtureDirs(abs) {
				importPath := base
				if dir != abs {
					importPath = base + "/" + filepath.Base(dir)
				}
				pkg, err := loader.LoadDir(importPath, dir)
				if err != nil {
					fmt.Fprintln(os.Stderr, "rtmdm-lint:", err)
					return 1
				}
				fs, err := collect(root, pkg, store, nil)
				if err != nil {
					fmt.Fprintln(os.Stderr, "rtmdm-lint:", err)
					return 1
				}
				findings = append(findings, fs...)
			}
		default:
			fmt.Fprintf(os.Stderr, "rtmdm-lint: unsupported argument %q (use ./... or a directory path)\n", arg)
			return 1
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})

	switch format {
	case "json":
		emitJSON(findings)
	case "sarif":
		emitSARIF(findings)
	default:
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "rtmdm-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// fixtureDirs returns the package directories to load for one
// directory argument: immediate subdirectories holding Go files first
// (dependency packages, sorted), then the directory itself.
func fixtureDirs(abs string) []string {
	var deps []string
	if ents, err := os.ReadDir(abs); err == nil {
		for _, e := range ents {
			if !e.IsDir() {
				continue
			}
			sub := filepath.Join(abs, e.Name())
			if hasGoFiles(sub) {
				deps = append(deps, sub)
			}
		}
	}
	sort.Strings(deps)
	return append(deps, abs)
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// keepFor scopes reporting per package: determinism on the simulation
// path, ctxflow on the service tier, everything else everywhere. All
// analyzers still run on every package so their facts are available
// downstream.
func keepFor(importPath string) func(*lint.Analyzer) bool {
	return func(a *lint.Analyzer) bool {
		switch a {
		case lint.Determinism:
			return isSimPath(importPath)
		case lint.CtxFlow:
			return isCtxPath(importPath)
		default:
			return true
		}
	}
}

// collect runs the suite over one package and renders the diagnostics.
func collect(root string, pkg *lint.Package, store *lint.FactStore, keep func(*lint.Analyzer) bool) ([]finding, error) {
	diags, err := lint.RunAllWith(lint.All(), pkg, store, keep)
	if err != nil {
		return nil, err
	}
	var out []finding
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		out = append(out, finding{
			File:     relPath(root, pos.Filename),
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return out, nil
}

// relPath renders file relative to the module root (slash-separated)
// when it lives under it, keeping json/sarif output checkout-agnostic.
func relPath(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return file
}

func emitJSON(findings []finding) {
	if findings == nil {
		findings = []finding{}
	}
	out, _ := json.MarshalIndent(map[string]any{
		"findings": findings,
		"count":    len(findings),
	}, "", "  ")
	fmt.Println(string(out))
}

// SARIF 2.1.0 structures — only the fields the upload consumes.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}
type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}
type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}
type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}
type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}
type sarifMessage struct {
	Text string `json:"text"`
}
type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}
type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}
type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}
type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}
type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

func emitSARIF(findings []finding) {
	var rules []sarifRule
	for _, a := range lint.All() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: firstLine(a.Doc)}})
	}
	results := []sarifResult{}
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: f.File, URIBaseID: "%SRCROOT%"},
				Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "rtmdm-lint", InformationURI: "https://github.com/rtmdm/rtmdm/blob/main/docs/STATIC_ANALYSIS.md", Rules: rules}},
			Results: results,
		}},
	}
	out, _ := json.MarshalIndent(log, "", "  ")
	fmt.Println(string(out))
}

// runSuppressionAudit lists every //lint:allow directive in the module
// with its file, analyzer and reason, one per stdout line, sorted. A
// malformed directive — empty or missing reason — is an audit failure:
// the written reason is what makes the suppression inventory
// reviewable. Exit 0 on a clean audit, 1 otherwise.
func runSuppressionAudit() int {
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtmdm-lint:", err)
		return 1
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtmdm-lint:", err)
		return 1
	}
	type entry struct {
		file     string
		line     int
		analyzer string
		reason   string
	}
	var entries []entry
	bad := 0
	for _, path := range loader.Roots() {
		pkg, err := loader.LoadImportPath(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtmdm-lint:", err)
			return 1
		}
		ok, malformed := lint.Suppressions(pkg)
		for _, s := range ok {
			entries = append(entries, entry{file: relPath(root, s.File), line: s.Line, analyzer: s.Analyzer, reason: s.Reason})
		}
		for _, d := range malformed {
			pos := pkg.Fset.Position(d.Pos)
			fmt.Fprintf(os.Stderr, "rtmdm-lint: %s:%d: suppression without a reason: %s\n",
				relPath(root, pos.Filename), pos.Line, d.Message)
			bad++
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].file != entries[j].file {
			return entries[i].file < entries[j].file
		}
		return entries[i].line < entries[j].line
	})
	for _, e := range entries {
		fmt.Printf("%s:%d: %s -- %s\n", e.file, e.line, e.analyzer, e.reason)
	}
	fmt.Fprintf(os.Stderr, "rtmdm-lint: %d audited suppression(s), %d malformed\n", len(entries), bad)
	if bad > 0 {
		return 1
	}
	return 0
}

func isDir(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}

// moduleRoot locates the enclosing module: `go env GOMOD` first, then a
// go.mod walk from the working directory.
func moduleRoot() (string, error) {
	if out, err := exec.Command("go", "env", "GOMOD").Output(); err == nil {
		gomod := strings.TrimSpace(string(out))
		if gomod != "" && gomod != os.DevNull {
			return filepath.Dir(gomod), nil
		}
	}
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// metricNameRe mirrors docsync_test.go: backticked dotted identifiers in
// the instrumented-package namespaces.
var metricNameRe = regexp.MustCompile("`((?:sim|exec|dse|expr|workload|server|analysis|gateway|cluster|corpus)\\.[a-z0-9_]+)`")

// loadCatalog parses the metric catalogue out of docs/OBSERVABILITY.md.
func loadCatalog(root string) (map[string]bool, error) {
	doc, err := os.ReadFile(filepath.Join(root, "docs", "OBSERVABILITY.md"))
	if err != nil {
		return nil, fmt.Errorf("loading metric catalogue: %w", err)
	}
	cat := map[string]bool{}
	for _, m := range metricNameRe.FindAllStringSubmatch(string(doc), -1) {
		cat[m[1]] = true
	}
	return cat, nil
}
