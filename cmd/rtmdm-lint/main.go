// Command rtmdm-lint runs the repo's custom static analyzers
// (internal/lint) over the module: determinism, millitime, hotpathalloc
// and metricname. See docs/STATIC_ANALYSIS.md for the catalogue and the
// //lint:allow suppression directive.
//
// Usage:
//
//	rtmdm-lint [-list] [packages|dirs]
//
// Arguments are either the "./..." pattern (the default — every package
// of the enclosing module) or directory paths, which are loaded without
// the go tool so testdata fixture packages can be linted too. The
// determinism analyzer is scoped to the simulation-path packages; the
// other three run everywhere. Directory arguments run all four, so
// fixture trees exercise every analyzer.
//
// The command is also usable as a vet tool:
//
//	go vet -vettool=$(command -v rtmdm-lint) ./...
//
// in which case it speaks the vet driver protocol (-V=full handshake,
// JSON config file, vetx facts stub).
//
// Exit status: 0 when clean, 1 on findings or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"

	"rtmdm/internal/lint"
)

// simPathSuffixes are the packages whose execution model must be
// deterministic: the kernel, the executor and everything that feeds the
// result tables. The determinism analyzer is enforced only here;
// harness-side packages (plot, cmd) may read clocks.
var simPathSuffixes = []string{
	"internal/sim", "internal/exec", "internal/core", "internal/trace",
	"internal/expr", "internal/workload", "internal/fault",
	"internal/scenario", "internal/dse",
}

func isSimPath(importPath string) bool {
	for _, s := range simPathSuffixes {
		if importPath == s || strings.HasSuffix(importPath, "/"+s) {
			return true
		}
	}
	return false
}

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "print the analyzer catalogue and exit")
	vFlag := flag.String("V", "", "vet driver handshake (-V=full)")
	flag.Bool("flags", false, "vet driver flag query (prints an empty set)")
	flag.Parse()

	if *vFlag != "" {
		// go vet's tool-ID handshake: one "<name> version <id>" line.
		fmt.Printf("rtmdm-lint version devel\n")
		return 0
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, firstLine(a.Doc))
		}
		return 0
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runVetTool(args[0])
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	return runStandalone(args)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func runStandalone(args []string) int {
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtmdm-lint:", err)
		return 1
	}
	lint.MetricCatalog, err = loadCatalog(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtmdm-lint:", err)
		return 1
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtmdm-lint:", err)
		return 1
	}

	findings := 0
	for _, arg := range args {
		switch {
		case arg == "./...":
			for _, path := range loader.Roots() {
				pkg, err := loader.LoadImportPath(path)
				if err != nil {
					fmt.Fprintln(os.Stderr, "rtmdm-lint:", err)
					return 1
				}
				findings += report(pkg, analyzersFor(path))
			}
		case isDir(arg):
			// Directory mode: load without the go tool (works for
			// testdata fixtures) and run the full suite.
			abs, err := filepath.Abs(arg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rtmdm-lint:", err)
				return 1
			}
			pkg, err := loader.LoadDir("rtmdm-lint-dir/"+filepath.Base(abs), abs)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rtmdm-lint:", err)
				return 1
			}
			findings += report(pkg, lint.All())
		default:
			fmt.Fprintf(os.Stderr, "rtmdm-lint: unsupported argument %q (use ./... or a directory path)\n", arg)
			return 1
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "rtmdm-lint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// analyzersFor scopes the suite per package: determinism only on the
// simulation path, the rest everywhere.
func analyzersFor(importPath string) []*lint.Analyzer {
	if isSimPath(importPath) {
		return lint.All()
	}
	var out []*lint.Analyzer
	for _, a := range lint.All() {
		if a != lint.Determinism {
			out = append(out, a)
		}
	}
	return out
}

func report(pkg *lint.Package, as []*lint.Analyzer) int {
	diags, err := lint.RunAll(as, pkg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtmdm-lint:", err)
		os.Exit(1)
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		fmt.Printf("%s: [%s] %s\n", pos, d.Analyzer, d.Message)
	}
	return len(diags)
}

func isDir(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}

// moduleRoot locates the enclosing module: `go env GOMOD` first, then a
// go.mod walk from the working directory.
func moduleRoot() (string, error) {
	if out, err := exec.Command("go", "env", "GOMOD").Output(); err == nil {
		gomod := strings.TrimSpace(string(out))
		if gomod != "" && gomod != os.DevNull {
			return filepath.Dir(gomod), nil
		}
	}
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// metricNameRe mirrors docsync_test.go: backticked dotted identifiers in
// the instrumented-package namespaces.
var metricNameRe = regexp.MustCompile("`((?:sim|exec|dse|expr|workload|server|analysis|gateway|cluster)\\.[a-z0-9_]+)`")

// loadCatalog parses the metric catalogue out of docs/OBSERVABILITY.md.
func loadCatalog(root string) (map[string]bool, error) {
	doc, err := os.ReadFile(filepath.Join(root, "docs", "OBSERVABILITY.md"))
	if err != nil {
		return nil, fmt.Errorf("loading metric catalogue: %w", err)
	}
	cat := map[string]bool{}
	for _, m := range metricNameRe.FindAllStringSubmatch(string(doc), -1) {
		cat[m[1]] = true
	}
	return cat, nil
}
