// Package brokentree is the driver test's negative fixture: exactly one
// violation per analyzer, so `rtmdm-lint <dir>` must exit nonzero and
// name all seven analyzers. It lives under testdata so the go tool
// never builds it.
package brokentree

import (
	"context"
	"sync"
	"time"

	"rtmdm/internal/metrics"
	"rtmdm/internal/sim"
)

// Seed leaks the wall clock into a would-be deterministic component.
func Seed() int64 { return time.Now().UnixNano() }

// Scale pushes a virtual-time quantity through float arithmetic.
func Scale(t sim.Time) sim.Time { return sim.Time(float64(t) * 1.5) }

// Hot concatenates on a declared hot path.
//
//rtmdm:hotpath
func Hot(a, b string) string { return a + b }

// Register uses a metric name missing from docs/OBSERVABILITY.md.
func Register(r *metrics.Registry) {
	r.Counter("exec.bogus_undocumented", "x", "undocumented")
}

// Handle discards the caller's ctx for a fresh root.
func Handle(ctx context.Context) error {
	_ = ctx
	return context.Background().Err()
}

var mu sync.Mutex

// Forward holds the lock across a blocking sleep.
func Forward() {
	mu.Lock()
	time.Sleep(time.Millisecond)
	mu.Unlock()
}

// Spawn leaks a pump goroutine with no termination path.
func Spawn(ch chan int) {
	go func() {
		for {
			ch <- 1
		}
	}()
}
