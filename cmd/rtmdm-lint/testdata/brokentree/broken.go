// Package brokentree is the driver test's negative fixture: exactly one
// violation per analyzer, so `rtmdm-lint <dir>` must exit nonzero and
// name all four analyzers. It lives under testdata so the go tool never
// builds it.
package brokentree

import (
	"time"

	"rtmdm/internal/metrics"
	"rtmdm/internal/sim"
)

// Seed leaks the wall clock into a would-be deterministic component.
func Seed() int64 { return time.Now().UnixNano() }

// Scale pushes a virtual-time quantity through float arithmetic.
func Scale(t sim.Time) sim.Time { return sim.Time(float64(t) * 1.5) }

// Hot concatenates on a declared hot path.
//
//rtmdm:hotpath
func Hot(a, b string) string { return a + b }

// Register uses a metric name missing from docs/OBSERVABILITY.md.
func Register(r *metrics.Registry) {
	r.Counter("exec.bogus_undocumented", "x", "undocumented")
}
