package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"

	"rtmdm/internal/lint"
)

// vetConfig is the JSON the go command hands a -vettool per package —
// the same wire format golang.org/x/tools/go/analysis/unitchecker
// consumes. Only the fields this driver needs are decoded.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetTool implements the vet driver protocol: read the package
// config, type-check from the supplied export data, run the suite, emit
// findings on stderr, and write this package's facts to VetxOutput —
// the facts file the go command caches alongside the export data and
// hands to downstream packages via PackageVetx. Imports' facts are
// decoded into the store before the suite runs, so cross-package
// analyzers (ctxflow, lockhold, goroleak) see upstream facts under vet
// exactly as they do standalone. Exit 0 clean, 2 on findings — vet's
// convention.
func runVetTool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtmdm-lint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "rtmdm-lint: parsing vet config:", err)
		return 1
	}
	store := lint.NewFactStore(lint.All())
	for path, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil || len(data) == 0 {
			continue // a dep analyzed by an older tool build, or no facts
		}
		if err := store.DecodePackage(path, data); err != nil {
			fmt.Fprintln(os.Stderr, "rtmdm-lint:", err)
			return 1
		}
	}
	// The facts file must exist even when no analysis runs, or the go
	// command reports a tool failure.
	writeVetx := func() int {
		if cfg.VetxOutput == "" {
			return 0
		}
		facts, err := store.EncodePackage(cfg.ImportPath)
		if err == nil {
			err = os.WriteFile(cfg.VetxOutput, facts, 0o666)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtmdm-lint:", err)
			return 1
		}
		return 0
	}
	if cfg.VetxOnly || len(cfg.GoFiles) == 0 {
		return writeVetx()
	}

	if root, err := moduleRootFrom(cfg.Dir); err == nil {
		lint.MetricCatalog, _ = loadCatalog(root)
	}

	fset := token.NewFileSet()
	pkg := &lint.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Src:        map[string][]byte{},
	}
	for _, fn := range cfg.GoFiles {
		src, err := os.ReadFile(fn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtmdm-lint:", err)
			return 1
		}
		f, err := parser.ParseFile(fset, fn, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtmdm-lint:", err)
			return 1
		}
		pkg.Src[fn] = src
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	imp, err := newVetImporter(fset, &cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtmdm-lint:", err)
		return 1
	}
	conf := types.Config{
		Importer:    imp,
		FakeImportC: true,
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, pkg.Files, pkg.Info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "rtmdm-lint:", err)
		return 1
	}
	pkg.Types = tpkg

	diags, err := lint.RunAllWith(lint.All(), pkg, store, keepFor(cfg.ImportPath))
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtmdm-lint:", err)
		return 1
	}
	if rc := writeVetx(); rc != 0 {
		return rc
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// vetImporter resolves imports through the export files the go command
// listed in the vet config. One gc importer instance per package keeps
// imported package identities stable across imports.
type vetImporter struct {
	cfg *vetConfig
	gc  types.ImporterFrom
}

func newVetImporter(fset *token.FileSet, cfg *vetConfig) (*vetImporter, error) {
	v := &vetImporter{cfg: cfg}
	gc, ok := importer.ForCompiler(fset, "gc", v.lookup).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("gc importer does not implement ImporterFrom")
	}
	v.gc = gc
	return v, nil
}

func (v *vetImporter) Import(path string) (*types.Package, error) {
	return v.ImportFrom(path, v.cfg.Dir, 0)
}

func (v *vetImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return v.gc.ImportFrom(path, dir, mode)
}

func (v *vetImporter) lookup(path string) (io.ReadCloser, error) {
	canonical := path
	if mapped, ok := v.cfg.ImportMap[path]; ok {
		canonical = mapped
	}
	file, ok := v.cfg.PackageFile[canonical]
	if !ok {
		return nil, fmt.Errorf("no export data for %q in vet config", path)
	}
	return os.Open(file)
}

// moduleRootFrom walks up from dir to the enclosing go.mod.
func moduleRootFrom(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
