module rtmdm

go 1.22
