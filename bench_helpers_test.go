package rtmdm

import (
	"math/rand"

	"rtmdm/internal/nn"
	"rtmdm/internal/segment"
)

// newRandomInput builds a deterministic pseudo-random input tensor for a
// model (bench helper).
func newRandomInput(m *Model) *nn.Tensor {
	rng := rand.New(rand.NewSource(42))
	x := nn.NewTensor(m.Input, m.InQuant)
	for i := range x.Data {
		x.Data[i] = int8(rng.Intn(255) - 127)
	}
	return x
}

// segmentBuildForBench exercises the segmenter exactly as System.Build does.
func segmentBuildForBench(m *Model, plat Platform, pol Policy) (*SegmentPlan, error) {
	return segment.BuildLimits(m, plat, pol.Limits(plat, 3), segment.Greedy)
}
