package rtmdm

import "testing"

// TestSimulateAllocBudget pins the steady-state allocation count of a full
// case-study simulation so the slab-based event kernel cannot silently
// regress back to per-event heap traffic. The budget has ~20% slack over
// the measured steady state (≈13.6k allocs: jobs, trace events and metric
// buckets — the simulation kernel itself is zero-alloc, see
// internal/sim/slab_test.go). The pre-slab baseline was ≈19.2k allocs/op.
func TestSimulateAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting is wall-time sensitive; skipped in -short")
	}
	plat := DefaultPlatform()
	pol := RTMDM()
	set, err := NewSystem(plat, pol).
		AddTask("kws", "ds-cnn", 50*Millisecond).
		AddTask("det", "mobilenetv1-0.25", 150*Millisecond).
		AddTask("anomaly", "autoencoder", 100*Millisecond).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	// Warm the engine pool and the offline caches before measuring.
	if _, err := Simulate(set, plat, pol, Second); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := Simulate(set, plat, pol, Second); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 16500
	if allocs > budget {
		t.Fatalf("Simulate steady state: %.0f allocs/op, budget %d", allocs, budget)
	}
}
