package rtmdm

import (
	"context"
	"fmt"
	"testing"

	"rtmdm/internal/analysis"
	"rtmdm/internal/corpus"
	"rtmdm/internal/scenario"
)

// TestSimulateAllocBudget pins the steady-state allocation count of a full
// case-study simulation so the slab-based event kernel cannot silently
// regress back to per-event heap traffic. The budget has ~20% slack over
// the measured steady state (≈13.6k allocs: jobs, trace events and metric
// buckets — the simulation kernel itself is zero-alloc, see
// internal/sim/slab_test.go). The pre-slab baseline was ≈19.2k allocs/op.
func TestSimulateAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting is wall-time sensitive; skipped in -short")
	}
	plat := DefaultPlatform()
	pol := RTMDM()
	set, err := NewSystem(plat, pol).
		AddTask("kws", "ds-cnn", 50*Millisecond).
		AddTask("det", "mobilenetv1-0.25", 150*Millisecond).
		AddTask("anomaly", "autoencoder", 100*Millisecond).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	// Warm the engine pool and the offline caches before measuring.
	if _, err := Simulate(set, plat, pol, Second); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := Simulate(set, plat, pol, Second); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 16500
	if allocs > budget {
		t.Fatalf("Simulate steady state: %.0f allocs/op, budget %d", allocs, budget)
	}
}

// TestCorpusCheckAllocBudget pins the steady-state allocation count of
// the differential oracle across a warm 8-instance slice of the smoke
// corpus, so per-check regeneration of models or segmentation plans (the
// caches internal/workload memoizes) cannot silently regress the sweep's
// throughput. Individual checks range ≈1.7k–10.3k allocs/op depending on
// the drawn scenario (simulation length dominates), so the budget covers
// the whole slice with ~20% slack over the measured ≈54.6k.
func TestCorpusCheckAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting is wall-time sensitive; skipped in -short")
	}
	spec := corpus.SmokeSpec()
	spec.Count = 8
	gen, err := corpus.NewGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	o := corpus.NewOracle(gen)
	ctx := context.Background()
	sweep := func() {
		for i := 0; i < gen.Count(); i++ {
			if out := o.Check(ctx, i); out.Class == corpus.ClassViolation {
				t.Fatalf("index %d: %v", i, out.Violations)
			}
		}
	}
	sweep() // warm the model/segmentation/spec caches
	allocs := testing.AllocsPerRun(5, sweep)
	const budget = 66000
	if allocs > budget {
		t.Fatalf("corpus check steady state: %.0f allocs per 8-check sweep, budget %d", allocs, budget)
	}
}

// admitCommitted builds the n-task committed set of the admission
// benchmarks: descending periods, so every committed task has real
// higher-priority interference and the warm path has bounds worth
// reusing.
func admitCommitted(n int) []scenario.TaskSpec {
	specs := make([]scenario.TaskSpec, n)
	for i := range specs {
		specs[i] = scenario.TaskSpec{
			Name:     fmt.Sprintf("t%02d", i),
			Model:    "tinymlp",
			PeriodMs: 200 - 5*float64(i),
		}
	}
	return specs
}

// admitCandidate is committed + one probe task, canonicalized the way
// the admission server hands candidates to the evaluator.
func admitCandidate(committed []scenario.TaskSpec) *scenario.Scenario {
	probe := scenario.TaskSpec{Name: "probe", Model: "tinymlp", PeriodMs: 40}
	return (&scenario.Scenario{
		Policy: "rt-mdm",
		Tasks:  append(append([]scenario.TaskSpec(nil), committed...), probe),
	}).Canonicalize()
}

// warmedAnalyzer returns an IncrementalAnalyzer with the committed set
// evaluated and committed — the state a server node holds when a probe
// arrives.
func warmedAnalyzer(tb testing.TB, committed []scenario.TaskSpec) *analysis.IncrementalAnalyzer {
	tb.Helper()
	base := (&scenario.Scenario{Policy: "rt-mdm",
		Tasks: append([]scenario.TaskSpec(nil), committed...)}).Canonicalize()
	inc := analysis.NewIncrementalAnalyzer()
	v, _, err := inc.Evaluate(context.Background(), base)
	if err != nil {
		tb.Fatal(err)
	}
	if !v.Schedulable {
		tb.Fatalf("committed set unschedulable: %s", v.Reason)
	}
	inc.Commit(base)
	return inc
}

// BenchmarkAdmitCold32 is the admission hot path without warm state: a
// full cold evaluation (model builds, segmentation, terms, fixpoints) of
// a 33-task candidate, as the server ran before the incremental analyzer.
func BenchmarkAdmitCold32(b *testing.B) {
	cand := admitCandidate(admitCommitted(32))
	ctx := context.Background()
	if _, err := analysis.EvaluateScenario(ctx, cand); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.EvaluateScenario(ctx, cand); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdmitWarm32 is the same decision served by the incremental
// analyzer. Under rt-mdm the candidate's set size differs from the
// committed size, so fixpoint warm starts are refused (the prefetch
// segment budget is n-dependent; see docs/ANALYSIS.md §9) and the win
// is term caching — which dominates the cold cost anyway. The speedup
// over BenchmarkAdmitCold32 is the PR's ≥5× acceptance pin; see
// docs/PERFORMANCE.md for recorded numbers.
func BenchmarkAdmitWarm32(b *testing.B) {
	committed := admitCommitted(32)
	inc := warmedAnalyzer(b, committed)
	cand := admitCandidate(committed)
	ctx := context.Background()
	// First evaluation builds terms at the candidate's set size; the
	// steady state must serve every task from the cache.
	if _, _, err := inc.Evaluate(ctx, cand); err != nil {
		b.Fatal(err)
	}
	if _, st, err := inc.Evaluate(ctx, cand); err != nil {
		b.Fatal(err)
	} else if st.TasksReused != len(committed)+1 {
		b.Fatalf("term cache did not engage: %+v", st)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := inc.Evaluate(ctx, cand); err != nil {
			b.Fatal(err)
		}
	}
}

// TestAdmitWarmAllocBudget pins the steady-state allocation count of a
// warm admission evaluation so term caching cannot silently regress back
// to per-request model building. Budget has ~40% slack over the measured
// steady state (≈420 allocs/op: per-evaluation clones, priority sort,
// fixpoint bookkeeping; the cold path runs ≈2.7k allocs and ~56× the
// wall time, dominated by model building and segmentation).
func TestAdmitWarmAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting is wall-time sensitive; skipped in -short")
	}
	committed := admitCommitted(32)
	inc := warmedAnalyzer(t, committed)
	cand := admitCandidate(committed)
	ctx := context.Background()
	// Warm the term cache at the candidate's set size before measuring.
	if _, _, err := inc.Evaluate(ctx, cand); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, _, err := inc.Evaluate(ctx, cand); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 600
	if allocs > budget {
		t.Fatalf("warm admit steady state: %.0f allocs/op, budget %d", allocs, budget)
	}
}
